//! A minimal JSON syntax validator.
//!
//! The offline build container has no `serde_json`, but the benchmark
//! reports (`BENCH_*.json`) must be machine-readable by downstream
//! tooling; this validator is just enough to assert well-formedness in
//! tests and the CI smoke job.

/// Validate that `s` is one well-formed JSON value (with optional
/// surrounding whitespace). Returns the byte offset and a message on the
/// first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at {pos}", pos = *pos)),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // escape + escaped byte (\uXXXX also advances past 'u')
                if b.get(*pos - 1) == Some(&b'u') {
                    *pos += 4;
                }
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("malformed number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("malformed fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while b.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("malformed exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_wellformed() {
        for s in [
            "{}",
            "[]",
            "null",
            "-12.5e3",
            r#"{"a": [1, 2.5, "x\"y", true, null], "b": {"c": false}}"#,
            "  [1,\n 2]  ",
        ] {
            validate(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": }",
            "12.",
            "1e",
            "\"open",
            "{} extra",
            "{'a': 1}",
        ] {
            assert!(validate(s).is_err(), "accepted: {s}");
        }
    }
}
