//! The engine-ingest throughput benchmark.
//!
//! Measures events/second with 1, 16, and 128 standing queries under
//! four deployments — the scan-all routing baseline, the type-indexed
//! router, the query-parallel sharded engine, and the data-parallel
//! (`ByPartitionKey`) sharded engine — all assembled and driven through the
//! [`Sase`] builder facade (`Sase::builder().schemas(..).routing(..)` /
//! `.shards(n)`), so the recorded numbers measure the system's public
//! face, typed [`QueryHandle`] stats lookups included. The `ingest`
//! binary renders the measurements as `BENCH_ingest.json` so later
//! changes have a recorded perf trajectory.
//!
//! The workload is the multi-tenant shape the ROADMAP north star names:
//! many standing queries, each watching a narrow slice of a wide
//! event-type space — exactly where `(stream, type)`-indexed routing beats
//! offering every event to every query.

use std::time::Instant;

use sase::{QueryHandle, RoutingMode, Sase, ShardingMode};
use sase_core::event::{Event, SchemaRegistry};

use crate::{seq_n_stream, stream_for};

/// Number of distinct event types in the ingest workload.
pub const INGEST_TYPES: usize = 128;
/// Events per [`Sase::process`] call.
pub const INGEST_BATCH: usize = 512;
/// Standing-query counts measured.
pub const INGEST_QUERY_COUNTS: [usize; 3] = [1, 16, 128];
/// Throughput multiple the indexed router is expected to reach over the
/// scan-all baseline at the largest query count (recorded in the report;
/// the deterministic routing-work equivalent is asserted in tests).
pub const INGEST_SPEEDUP_TARGET: f64 = 5.0;

/// The ingest workload: `INGEST_TYPES` event types in a uniform mix over
/// 32 tag partitions.
pub fn ingest_stream(events: usize, seed: u64) -> (SchemaRegistry, Vec<Event>) {
    stream_for(&seq_n_stream(INGEST_TYPES, seed, events, 32))
}

/// Standing query `i`: a two-step sequence over two adjacent types of the
/// type space, so each query's relevant-type set is 2 of `n_types`.
pub fn ingest_query(i: usize, n_types: usize) -> String {
    let a = i % n_types;
    let b = (i + 1) % n_types;
    format!("EVENT SEQ(T{a} x, T{b} y) WHERE x.TagId = y.TagId WITHIN 64 RETURN x.TagId AS tag")
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct IngestRun {
    /// Configuration label (`scan-all`, `indexed`, `sharded-N`).
    pub label: String,
    /// Standing queries registered.
    pub queries: usize,
    /// Engine workers (1 unless sharded).
    pub shards: usize,
    /// Wall-clock seconds for the whole stream.
    pub seconds: f64,
    /// Input events per second.
    pub events_per_sec: f64,
    /// Composite events emitted.
    pub matches: u64,
    /// Total events offered to query runtimes — the deterministic routing
    /// work metric (scan-all offers every event to every query).
    pub events_offered: u64,
}

/// Register the standing queries on a facade deployment, returning their
/// typed handles.
fn register_queries(sase: &mut Sase, n_queries: usize) -> Vec<QueryHandle> {
    (0..n_queries)
        .map(|i| {
            sase.register(&format!("q{i}"), &ingest_query(i, INGEST_TYPES))
                .expect("ingest query registers")
        })
        .collect()
}

/// Drive the stream through a facade deployment and measure it.
fn measure(
    mut sase: Sase,
    handles: &[QueryHandle],
    events: &[Event],
    label: String,
    batch: usize,
) -> IngestRun {
    let shards = sase.shard_count();
    let start = Instant::now();
    let mut matches = 0u64;
    for chunk in events.chunks(batch.max(1)) {
        matches += sase.process(chunk).expect("ingest batch").len() as u64;
    }
    let seconds = start.elapsed().as_secs_f64();
    let events_offered = handles
        .iter()
        .map(|h| sase.stats(h).expect("registered").events_processed)
        .sum();
    IngestRun {
        label,
        queries: handles.len(),
        shards,
        seconds,
        events_per_sec: events.len() as f64 / seconds.max(1e-12),
        matches,
        events_offered,
    }
}

/// Measure a single engine in the given routing mode, through the facade.
pub fn run_ingest_engine(
    registry: &SchemaRegistry,
    events: &[Event],
    n_queries: usize,
    mode: RoutingMode,
    batch: usize,
) -> IngestRun {
    let mut sase = Sase::builder()
        .schemas(registry.clone())
        .routing(mode)
        .build()
        .expect("facade builds");
    let handles = register_queries(&mut sase, n_queries);
    let label = match mode {
        RoutingMode::Indexed => "indexed".to_string(),
        RoutingMode::ScanAll => "scan-all".to_string(),
    };
    measure(sase, &handles, events, label, batch)
}

/// Measure the sharded deployment (type-indexed routing inside each
/// shard), through the facade.
pub fn run_ingest_sharded(
    registry: &SchemaRegistry,
    events: &[Event],
    n_queries: usize,
    shards: usize,
    batch: usize,
) -> IngestRun {
    let mut sase = Sase::builder()
        .schemas(registry.clone())
        .shards(shards)
        .build()
        .expect("facade builds");
    let handles = register_queries(&mut sase, n_queries);
    let shards = sase.shard_count();
    measure(sase, &handles, events, format!("sharded-{shards}"), batch)
}

/// Measure the data-parallel deployment (`ByPartitionKey`: each event is
/// hashed by its partition-key value to one of `shards` data workers, so
/// per-event routing work is split instead of duplicated), through the
/// facade. Every workload query equates `x.TagId = y.TagId`, so all of
/// them distribute and the designated pinned worker stays idle.
pub fn run_ingest_partitioned(
    registry: &SchemaRegistry,
    events: &[Event],
    n_queries: usize,
    shards: usize,
    batch: usize,
) -> IngestRun {
    let mut sase = Sase::builder()
        .schemas(registry.clone())
        .shards(shards)
        .sharding(ShardingMode::ByPartitionKey)
        .build()
        .expect("facade builds");
    let handles = register_queries(&mut sase, n_queries);
    measure(
        sase,
        &handles,
        events,
        format!("data_parallel-{shards}"),
        batch,
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Run the full measurement matrix and render `BENCH_ingest.json`.
///
/// `mode_label` records how the report was produced (`full` or `test`);
/// the `--test` CI smoke run uses a tiny stream, so only the full run's
/// throughput numbers are meaningful.
pub fn ingest_report(events_n: usize, shards: usize, batch: usize, mode_label: &str) -> String {
    let (registry, events) = ingest_stream(events_n, 7);
    let mut runs: Vec<IngestRun> = Vec::new();
    for &q in &INGEST_QUERY_COUNTS {
        runs.push(run_ingest_engine(
            &registry,
            &events,
            q,
            RoutingMode::ScanAll,
            batch,
        ));
        runs.push(run_ingest_engine(
            &registry,
            &events,
            q,
            RoutingMode::Indexed,
            batch,
        ));
        runs.push(run_ingest_sharded(&registry, &events, q, shards, batch));
        runs.push(run_ingest_partitioned(&registry, &events, q, shards, batch));
    }

    let max_q = *INGEST_QUERY_COUNTS.last().expect("nonempty");
    let rate_of = |label: &str| {
        runs.iter()
            .find(|r| r.label == label && r.queries == max_q)
            .map(|r| r.events_per_sec)
            .unwrap_or(0.0)
    };
    let scan_rate = rate_of("scan-all");
    let indexed_rate = rate_of("indexed");
    let speedup = if scan_rate > 0.0 {
        indexed_rate / scan_rate
    } else {
        0.0
    };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"ingest\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape(mode_label)));
    out.push_str(&format!("  \"events\": {},\n", events.len()));
    out.push_str(&format!("  \"event_types\": {INGEST_TYPES},\n"));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"batch\": {batch},\n"));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"queries\": {}, \"shards\": {}, \
             \"seconds\": {:.6}, \"events_per_sec\": {:.1}, \"matches\": {}, \
             \"events_offered\": {}}}{}\n",
            json_escape(&r.label),
            r.queries,
            r.shards,
            r.seconds,
            r.events_per_sec,
            r.matches,
            r.events_offered,
            if i + 1 == runs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_indexed_vs_scan_all_at_{max_q}_queries\": {speedup:.2},\n"
    ));
    out.push_str(&format!(
        "  \"speedup_target\": {INGEST_SPEEDUP_TARGET:.1},\n"
    ));
    let sharded_rate = runs
        .iter()
        .rev()
        .find(|r| r.label.starts_with("sharded") && r.queries == max_q)
        .map(|r| r.events_per_sec)
        .unwrap_or(0.0);
    out.push_str(&format!(
        "  \"sharded_note\": \"persistent per-shard worker threads replaced the \
         per-batch scoped spawn/join (plus FxHash maps and zero-alloc predicate \
         programs): sharded-{shards} at {max_q} queries was 874,620 ev/s before the fix \
         (slower than single-shard indexed) and is {sharded_rate:.0} ev/s in this \
         report's runs; the indexed single engine remains faster on this workload \
         because its per-query work is tiny while every shard pays the full \
         per-event routing loop\",\n",
    ));
    let data_rate = rate_of(&format!("data_parallel-{shards}"));
    let data_speedup = if indexed_rate > 0.0 {
        data_rate / indexed_rate
    } else {
        0.0
    };
    out.push_str("  \"data_parallel\": {\n");
    out.push_str(&format!("    \"shards\": {shards},\n"));
    out.push_str(&format!("    \"queries\": {max_q},\n"));
    out.push_str(&format!("    \"events_per_sec\": {data_rate:.1},\n"));
    out.push_str(&format!(
        "    \"indexed_events_per_sec\": {indexed_rate:.1},\n"
    ));
    out.push_str(&format!("    \"speedup_vs_indexed\": {data_speedup:.2},\n"));
    out.push_str(&format!(
        "    \"note\": \"before this mode existed the only way to shard this \
         workload was query-parallel (ByQuery), which duplicated the per-event \
         routing loop into every worker and peaked at 1,390,516 ev/s at {max_q} \
         queries — slower than the 2,335,082 ev/s indexed single engine; \
         ByPartitionKey hashes each event's TagId to exactly one of {shards} \
         data workers so the routing loop is split, not duplicated, measured \
         here at {data_rate:.0} ev/s on a {cores}-core host — splitting work \
         across workers can only pay off with at least 2 cores, so on a \
         1-core host this entry records pure dispatch overhead, not scaling\"\n",
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minijson;

    #[test]
    fn report_is_wellformed_json() {
        let json = ingest_report(400, 2, 64, "test");
        minijson::validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"bench\": \"ingest\""));
        assert!(json.contains("scan-all"));
        assert!(json.contains("sharded-"));
        assert!(json.contains("speedup_indexed_vs_scan_all_at_128_queries"));
        assert!(json.contains("\"data_parallel\""));
        assert!(json.contains("data_parallel-2"));
        assert!(json.contains("\"speedup_vs_indexed\""));
    }

    /// The deterministic counterpart of the ≥5x throughput criterion:
    /// with 128 queries over `INGEST_TYPES` (128) types, scan-all offers
    /// every event to all 128 runtimes while the indexed router offers
    /// each event only to the ~2 queries whose relevant-type set contains
    /// its type (query `i` covers types `i` and `i+1`), a ~64x reduction
    /// in offered events.
    #[test]
    fn indexed_routing_cuts_offered_events_5x_at_128_queries() {
        let (registry, events) = ingest_stream(3_000, 11);
        let scan = run_ingest_engine(&registry, &events, 128, RoutingMode::ScanAll, 256);
        let indexed = run_ingest_engine(&registry, &events, 128, RoutingMode::Indexed, 256);
        assert_eq!(scan.matches, indexed.matches, "routing is semantics-free");
        assert_eq!(scan.events_offered, 128 * events.len() as u64);
        assert!(
            scan.events_offered as f64 >= INGEST_SPEEDUP_TARGET * indexed.events_offered as f64,
            "scan offered {} vs indexed {}",
            scan.events_offered,
            indexed.events_offered
        );
    }

    /// Sharded and single-engine runs emit identical match counts.
    #[test]
    fn sharded_ingest_matches_single_engine() {
        let (registry, events) = ingest_stream(1_500, 13);
        let single = run_ingest_engine(&registry, &events, 16, RoutingMode::Indexed, 128);
        let sharded = run_ingest_sharded(&registry, &events, 16, 4, 128);
        assert_eq!(single.matches, sharded.matches);
        assert_eq!(sharded.shards, 4);
    }

    /// Data-parallel runs emit identical match counts too; every workload
    /// query equates TagId, so all of them distribute (the deployment is
    /// `shards` data workers plus one idle pinned worker).
    #[test]
    fn data_parallel_ingest_matches_single_engine() {
        let (registry, events) = ingest_stream(1_500, 13);
        let single = run_ingest_engine(&registry, &events, 16, RoutingMode::Indexed, 128);
        let partitioned = run_ingest_partitioned(&registry, &events, 16, 4, 128);
        assert_eq!(single.matches, partitioned.matches);
        assert_eq!(partitioned.shards, 5);
        assert_eq!(single.events_offered, partitioned.events_offered);
    }
}
