//! The concurrent-clients serving benchmark.
//!
//! Measures what the network layer adds on top of the engine: **sustained
//! acknowledged ingest** through round-tripping line-protocol clients,
//! and **fan-out latency** from the moment an ingester stamps an event to
//! the moment a WebSocket subscriber receives the pushed emission — p50,
//! p95, p99 over every delivered push, at 128 standing queries with a
//! thousand-plus concurrent connections.
//!
//! The workload is self-describing: each event carries its send time
//! (`SendNs`, nanoseconds since a shared epoch) and a `Shard` key; query
//! `q<k>` selects `Shard = k` and returns `SendNs` as `lat`, so the
//! subscriber can compute one-way latency from the pushed text alone.
//! Ingesters use server-assigned ticks, so any number of them can write
//! concurrently without out-of-order rejections. Ingester connections
//! stay open (parked) until the drain completes, so the reported
//! connection count is genuinely concurrent, not sequential.
//!
//! The `serve` binary renders the measurements as `BENCH_serve.json`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sase::server::client::{Client, PushClient};
use sase::server::wire::TickMode;
use sase::{Sase, ServerConfig};
use sase_core::event::{Event, SchemaRegistry};
use sase_core::value::{Value, ValueType};

/// Client-side thread stacks: like the server's connection threads, small
/// enough that a thousand-plus of them are cheap.
const BENCH_STACK: usize = 256 * 1024;

/// Workload shape for one serving run.
#[derive(Debug, Clone, Copy)]
pub struct ServeParams {
    /// Concurrent line-protocol ingest connections.
    pub ingesters: usize,
    /// Concurrent WebSocket push subscribers.
    pub subscribers: usize,
    /// Standing queries `q0..q{n-1}`, one per shard key.
    pub queries: usize,
    /// Total events across all ingesters (rounded down to a multiple of
    /// `ingesters`).
    pub events: usize,
    /// Events per ingest request.
    pub batch: usize,
}

impl ServeParams {
    /// The full configuration: 128 standing queries, 1k+ concurrent
    /// connections (32 ingesters + 1024 subscribers).
    pub fn full() -> Self {
        ServeParams {
            ingesters: 32,
            subscribers: 1024,
            queries: 128,
            events: 65_536,
            batch: 64,
        }
    }

    /// The CI smoke configuration: same shape, two orders of magnitude
    /// smaller, so the report schema is exercised in seconds.
    pub fn test() -> Self {
        ServeParams {
            ingesters: 8,
            subscribers: 16,
            queries: 8,
            events: 2_048,
            batch: 32,
        }
    }
}

/// The bench registry: one event type whose attributes carry the
/// workload's own instrumentation.
pub fn serve_registry() -> SchemaRegistry {
    let reg = SchemaRegistry::new();
    reg.register(
        "SRV_EV",
        &[
            ("Shard", ValueType::Int),
            ("SendNs", ValueType::Int),
            ("Tag", ValueType::Int),
        ],
    )
    .expect("bench schema registers");
    reg
}

/// Standing query `k`: select this shard, echo the send stamp.
pub fn serve_query(k: usize) -> String {
    format!("EVENT SRV_EV x WHERE x.Shard = {k} RETURN x.SendNs AS lat, x.Shard AS shard")
}

fn now_ns(epoch: &Instant) -> i64 {
    epoch.elapsed().as_nanos() as i64
}

/// Extract the `lat` value from a pushed emission line
/// (`[q3@17] {lat: 123456, shard: 3} <- …`).
pub fn parse_lat(line: &str) -> Option<i64> {
    let rest = line.split("lat: ").nth(1)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

/// First sample of an unlabeled series in a Prometheus exposition.
fn scrape_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        l.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.trim().parse().ok())
    })
}

/// Sum of every labeled sample of a series (e.g. per-session gauges).
fn scrape_sum(text: &str, name: &str) -> f64 {
    text.lines()
        .filter_map(|l| {
            let rest = l.strip_prefix(name)?;
            let rest = rest.strip_prefix('{').map(|r| r.split_once('}'))??.1;
            rest.trim().parse::<f64>().ok()
        })
        .sum()
}

/// Run the workload and render `BENCH_serve.json`.
///
/// `mode_label` records how the report was produced (`full` or `test`);
/// only the full run's throughput and latency numbers are meaningful.
pub fn serve_report(p: ServeParams, mode_label: &str) -> String {
    let reg = serve_registry();
    let mut sase = Sase::builder()
        .schemas(reg.clone())
        .metrics(true)
        .build()
        .expect("facade builds");
    for k in 0..p.queries {
        sase.register(&format!("q{k}"), &serve_query(k))
            .expect("bench query registers");
    }
    let config = ServerConfig {
        max_connections: p.ingesters + p.subscribers + 8,
        ..ServerConfig::default()
    };
    let handle = sase.serve("127.0.0.1:0", config).expect("server binds");
    let addr = handle.local_addr();
    let epoch = Arc::new(Instant::now());

    // Subscribers first, so every push of the measured stream has its
    // audience in place.
    let ready = Arc::new(AtomicUsize::new(0));
    let mut subscribers = Vec::with_capacity(p.subscribers);
    for j in 0..p.subscribers {
        let (ready, epoch) = (Arc::clone(&ready), Arc::clone(&epoch));
        let query = format!("q{}", j % p.queries);
        let sub = thread::Builder::new()
            .name(format!("bench-sub-{j}"))
            .stack_size(BENCH_STACK)
            .spawn(move || {
                let mut push = PushClient::connect(addr).expect("subscriber connects");
                push.subscribe(&query).expect("subscribes");
                ready.fetch_add(1, Ordering::SeqCst);
                let mut latencies: Vec<u64> = Vec::new();
                // Runs until the server's graceful shutdown closes the
                // stream; a dropped push simply never arrives.
                while let Ok(Some(line)) = push.next_event() {
                    if let Some(sent) = parse_lat(&line) {
                        latencies.push((now_ns(&epoch) - sent).max(0) as u64);
                    }
                }
                latencies
            })
            .expect("subscriber thread spawns");
        subscribers.push(sub);
    }
    while ready.load(Ordering::SeqCst) < p.subscribers {
        thread::sleep(Duration::from_millis(1));
    }

    // Ingesters: round-tripping acknowledged batches, then parking with
    // the connection open until the drain is observed.
    let per_ingester = (p.events / p.ingesters).max(1);
    let total_events = per_ingester * p.ingesters;
    let done = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let mut ingesters = Vec::with_capacity(p.ingesters);
    for i in 0..p.ingesters {
        let (done, release, epoch, reg) = (
            Arc::clone(&done),
            Arc::clone(&release),
            Arc::clone(&epoch),
            reg.clone(),
        );
        let ing = thread::Builder::new()
            .name(format!("bench-ing-{i}"))
            .stack_size(BENCH_STACK)
            .spawn(move || {
                let mut client = Client::connect(addr).expect("ingester connects");
                let mut sent = 0usize;
                while sent < per_ingester {
                    let n = p.batch.min(per_ingester - sent);
                    let send_ns = now_ns(&epoch);
                    let batch: Vec<Event> = (0..n)
                        .map(|j| {
                            let shard = (i + (sent + j) * p.ingesters) % p.queries;
                            reg.build_event(
                                "SRV_EV",
                                0, // rebased by server-assigned ticks
                                vec![
                                    Value::Int(shard as i64),
                                    Value::Int(send_ns),
                                    Value::Int((sent + j) as i64),
                                ],
                            )
                            .expect("bench event builds")
                        })
                        .collect();
                    let acked = client
                        .ingest(None, TickMode::ServerAssigned, &batch)
                        .expect("batch acknowledged");
                    assert_eq!(acked.len(), n, "each event matches its shard query");
                    sent += n;
                }
                done.fetch_add(1, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(5));
                }
            })
            .expect("ingester thread spawns");
        ingesters.push(ing);
    }
    while done.load(Ordering::SeqCst) < p.ingesters {
        thread::sleep(Duration::from_millis(1));
    }
    let ingest_seconds = start.elapsed().as_secs_f64();

    // Drain: poll the server's own metrics until the fan-out queues are
    // empty and the push counter has stopped moving, then read the final
    // counters while every benchmarked connection is still open.
    let mut monitor = Client::connect(addr).expect("monitor connects");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last_pushes = -1.0;
    let mut text = monitor.metrics().expect("metrics scrape");
    loop {
        let pushes = scrape_value(&text, "sase_server_pushes_total").unwrap_or(0.0);
        let depth = scrape_sum(&text, "sase_server_fanout_queue_depth");
        if (pushes == last_pushes && depth == 0.0) || Instant::now() > deadline {
            break;
        }
        last_pushes = pushes;
        thread::sleep(Duration::from_millis(100));
        text = monitor.metrics().expect("metrics scrape");
    }
    let pushes = scrape_value(&text, "sase_server_pushes_total").unwrap_or(0.0) as u64;
    let dropped = scrape_value(&text, "sase_server_pushes_dropped_total").unwrap_or(0.0) as u64;
    let observed_connections = scrape_value(&text, "sase_server_connections").unwrap_or(0.0) as u64;
    drop(monitor);

    release.store(true, Ordering::SeqCst);
    for ing in ingesters {
        ing.join().expect("ingester thread");
    }
    drop(handle.shutdown()); // closes every subscriber stream

    let mut latencies: Vec<u64> = Vec::new();
    for sub in subscribers {
        latencies.extend(sub.join().expect("subscriber thread"));
    }
    latencies.sort_unstable();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"mode\": \"{mode_label}\",\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(&format!("  \"standing_queries\": {},\n", p.queries));
    out.push_str(&format!(
        "  \"connections\": {},\n",
        p.ingesters + p.subscribers
    ));
    out.push_str(&format!("  \"ingesters\": {},\n", p.ingesters));
    out.push_str(&format!("  \"subscribers\": {},\n", p.subscribers));
    out.push_str(&format!(
        "  \"observed_connections\": {observed_connections},\n"
    ));
    out.push_str(&format!("  \"events\": {total_events},\n"));
    out.push_str(&format!("  \"batch\": {},\n", p.batch));
    out.push_str(&format!("  \"ingest_seconds\": {ingest_seconds:.6},\n"));
    out.push_str(&format!(
        "  \"sustained_events_per_sec\": {:.1},\n",
        total_events as f64 / ingest_seconds.max(1e-12)
    ));
    out.push_str(&format!("  \"pushes\": {pushes},\n"));
    out.push_str(&format!("  \"pushes_dropped\": {dropped},\n"));
    out.push_str(&format!("  \"pushes_received\": {},\n", latencies.len()));
    out.push_str(&format!(
        "  \"fanout_latency_ns\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}\n",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99)
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lat_parses_from_pushed_lines() {
        assert_eq!(
            parse_lat("[q3@17] {lat: 123456, shard: 3} <- x=SRV_EV@17(…)"),
            Some(123_456)
        );
        assert_eq!(parse_lat("[q3@17] {shard: 3} <- …"), None);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn scrapes_prometheus_samples() {
        let text = "sase_server_pushes_total 42\n\
                    sase_server_pushes_dropped_total 7\n\
                    sase_server_fanout_queue_depth{session=\"1\"} 3\n\
                    sase_server_fanout_queue_depth{session=\"2\"} 4\n";
        assert_eq!(scrape_value(text, "sase_server_pushes_total"), Some(42.0));
        assert_eq!(
            scrape_value(text, "sase_server_pushes_dropped_total"),
            Some(7.0)
        );
        assert_eq!(scrape_sum(text, "sase_server_fanout_queue_depth"), 7.0);
    }

    #[test]
    fn tiny_end_to_end_report_is_valid() {
        let p = ServeParams {
            ingesters: 2,
            subscribers: 4,
            queries: 2,
            events: 128,
            batch: 16,
        };
        let json = serve_report(p, "unit");
        crate::minijson::validate(&json).expect("well-formed JSON");
        for key in [
            "\"bench\": \"serve\"",
            "\"host_cores\"",
            "\"connections\": 6",
            "\"sustained_events_per_sec\"",
            "\"p50\"",
            "\"p95\"",
            "\"p99\"",
        ] {
            assert!(json.contains(key), "missing `{key}` in:\n{json}");
        }
    }
}
