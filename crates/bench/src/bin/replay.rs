//! Emit `BENCH_replay.json`: durable live-ingest throughput, checkpoint
//! latency, crash-recovery latency, and full-speed replay throughput at
//! three checkpoint intervals (see `sase_bench::replay`).
//!
//! ```text
//! cargo run --release -p sase-bench --bin replay            # full run
//! cargo run --release -p sase-bench --bin replay -- --test  # CI smoke
//! ```
//!
//! Flags: `--test` (tiny stream, shape-check only), `--events N`,
//! `--out PATH` (default `BENCH_replay.json`).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test = args.iter().any(|a| a == "--test");
    let mut out_path = "BENCH_replay.json".to_string();
    let mut events: usize = if test { 2_000 } else { 120_000 };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 1;
            }
            "--events" if i + 1 < args.len() => {
                events = args[i + 1].parse().expect("--events takes a count");
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }

    let mode = if test { "test" } else { "full" };
    let json = sase_bench::replay::replay_report(events, mode);
    sase_bench::minijson::validate(&json).expect("report must be well-formed JSON");
    std::fs::write(&out_path, json.as_bytes()).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path} ({events} events, mode {mode})");
}
