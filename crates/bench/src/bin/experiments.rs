//! Deterministic experiment driver: regenerates every table of
//! EXPERIMENTS.md (P1–P9). Run with:
//!
//! ```text
//! cargo run -p sase-bench --release --bin experiments [--quick]
//! ```
//!
//! `--quick` shrinks workload sizes ~10x for smoke runs.

use std::sync::Arc;
use std::time::Instant;

use sase_bench::*;
use sase_core::plan::PlannerOptions;
use sase_db::TrackAndTrace;
use sase_rfid::noise::NoiseModel;
use sase_rfid::sim::RfidSimulator;
use sase_stream::config::CleaningConfig;
use sase_stream::event_gen::{register_reading_schemas, StaticOns};
use sase_stream::pipeline::CleaningPipeline;

fn main() {
    let quick = quick_mode();
    let scale = if quick { 10 } else { 1 };
    println!("SASE experiment driver (deterministic, seeded). quick={quick}");
    println!();
    p1_window_scaling(scale);
    p2_partition_scaling(scale);
    p3_predicate_pushdown(scale);
    p4_negation(scale);
    p5_sequence_length(scale);
    p6_cleaning(scale);
    p7_event_db(scale);
    p8_language(scale);
    p9_multi_query(scale);
}

fn header(id: &str, title: &str, claim: &str) {
    println!("## {id}: {title}");
    println!("   claim: {claim}");
}

/// P1 — throughput vs window size: window pushdown into the sequence scan
/// vs post-construction filtering.
fn p1_window_scaling(scale: usize) {
    header(
        "P1",
        "throughput vs window size W",
        "window pushdown keeps throughput flat as W grows; post-filtering degrades",
    );
    let events = 60_000 / scale;
    let (registry, stream) = retail_stream(101, events, 50);
    println!(
        "   {:>8} | {:>14} | {:>16} | {:>10}",
        "W", "pushdown ev/s", "post-filter ev/s", "matches"
    );
    for w in [100u64, 400, 1600, 6400] {
        let q = seq2_query(w);
        let a = run_query(&registry, &stream, &q, PlannerOptions::default());
        let b = run_query(
            &registry,
            &stream,
            &q,
            PlannerOptions {
                pushdown_window: false,
                ..PlannerOptions::default()
            },
        );
        assert_eq!(a.matches, b.matches, "plans must agree");
        println!(
            "   {:>8} | {:>14} | {:>16} | {:>10}",
            w,
            fmt_rate(a.events_per_sec),
            fmt_rate(b.events_per_sec),
            a.matches
        );
    }
    println!();
}

/// P2 — throughput vs number of value partitions: PAIS vs flat AIS.
fn p2_partition_scaling(scale: usize) {
    header(
        "P2",
        "throughput vs #partitions (distinct TagIds)",
        "PAIS grows faster than flat AIS as partitions increase; equal at 1 partition",
    );
    let events = 30_000 / scale;
    println!(
        "   {:>10} | {:>12} | {:>12} | {:>10} | {:>12}",
        "partitions", "PAIS ev/s", "flat ev/s", "matches", "PAIS speedup"
    );
    for partitions in [1usize, 10, 100, 1000] {
        let (registry, stream) = retail_stream(202, events, partitions);
        let q = q1_query(150);
        let a = run_query(&registry, &stream, &q, PlannerOptions::default());
        let b = run_query(
            &registry,
            &stream,
            &q,
            PlannerOptions {
                pushdown_partition: false,
                ..PlannerOptions::default()
            },
        );
        assert_eq!(a.matches, b.matches, "plans must agree");
        println!(
            "   {:>10} | {:>12} | {:>12} | {:>10} | {:>11.2}x",
            partitions,
            fmt_rate(a.events_per_sec),
            fmt_rate(b.events_per_sec),
            a.matches,
            a.events_per_sec / b.events_per_sec
        );
    }
    println!();
}

/// P3 — single-event predicate pushdown: intermediate results and
/// throughput across predicate selectivities.
fn p3_predicate_pushdown(scale: usize) {
    header(
        "P3",
        "predicate pushdown vs selectivity",
        "pushing single-event predicates shrinks stack instances proportionally to selectivity",
    );
    let events = 40_000 / scale;
    println!(
        "   {:>12} | {:>12} | {:>12} | {:>16} | {:>16}",
        "selectivity", "pushed ev/s", "late ev/s", "pushed instances", "late instances"
    );
    for areas in [2i64, 4, 8, 16] {
        let mut cfg = sase_rfid::generator::SyntheticConfig::retail(303, events, 100);
        cfg.areas = areas;
        let (registry, stream) = stream_for(&cfg);
        let q = "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
                 WHERE x.TagId = z.TagId AND x.AreaId = 1 AND z.AreaId = 1 WITHIN 400";
        let a = run_query(&registry, &stream, q, PlannerOptions::default());
        let b = run_query(
            &registry,
            &stream,
            q,
            PlannerOptions {
                pushdown_single_event_predicates: false,
                ..PlannerOptions::default()
            },
        );
        assert_eq!(a.matches, b.matches, "plans must agree");
        println!(
            "   {:>12.3} | {:>12} | {:>12} | {:>16} | {:>16}",
            1.0 / areas as f64,
            fmt_rate(a.events_per_sec),
            fmt_rate(b.events_per_sec),
            a.stats.instances_appended,
            b.stats.instances_appended
        );
    }
    println!();
}

/// P4 — the cost of negation and the benefit of indexing counterexamples.
fn p4_negation(scale: usize) {
    header(
        "P4",
        "negation cost (Q1 vs Q1 without `!`) and candidate indexing",
        "negation adds bounded overhead; partition-indexed candidate lookup beats scanning",
    );
    let events = 40_000 / scale;
    let (registry, stream) = retail_stream(404, events, 100);
    let with_neg_idx = run_query(
        &registry,
        &stream,
        &q1_query(300),
        PlannerOptions::default(),
    );
    let with_neg_scan = run_query(
        &registry,
        &stream,
        &q1_query(300),
        PlannerOptions {
            indexed_negation: false,
            ..PlannerOptions::default()
        },
    );
    let without = run_query(
        &registry,
        &stream,
        &q1_without_negation(300),
        PlannerOptions::default(),
    );
    assert_eq!(with_neg_idx.matches, with_neg_scan.matches);
    println!(
        "   {:<28} | {:>12} | {:>10} | {:>18}",
        "configuration", "ev/s", "matches", "killed by negation"
    );
    for (name, r) in [
        ("no negation", &without),
        ("negation, indexed", &with_neg_idx),
        ("negation, scan", &with_neg_scan),
    ] {
        println!(
            "   {:<28} | {:>12} | {:>10} | {:>18}",
            name,
            fmt_rate(r.events_per_sec),
            r.matches,
            r.stats.dropped_by_negation
        );
    }
    println!();
}

/// P5 — sequence length scaling.
fn p5_sequence_length(scale: usize) {
    header(
        "P5",
        "throughput vs sequence length (2..5 components)",
        "SSC degrades gracefully with pattern length; the naive baseline collapses",
    );
    let events = 20_000 / scale;
    println!(
        "   {:>6} | {:>12} | {:>12} | {:>10}",
        "len", "SSC ev/s", "naive ev/s", "matches"
    );
    for len in [2usize, 3, 4, 5] {
        let cfg = seq_n_stream(len, 505, events, 200);
        let (registry, stream) = stream_for(&cfg);
        let q = seq_n_query(len, 200);
        let a = run_query(&registry, &stream, &q, PlannerOptions::default());
        let b = run_query(&registry, &stream, &q, PlannerOptions::naive());
        assert_eq!(a.matches, b.matches, "plans must agree");
        println!(
            "   {:>6} | {:>12} | {:>12} | {:>10}",
            len,
            fmt_rate(a.events_per_sec),
            fmt_rate(b.events_per_sec),
            a.matches
        );
    }
    println!();
}

/// P6 — cleaning pipeline overhead and fidelity per noise level.
fn p6_cleaning(scale: usize) {
    header(
        "P6",
        "cleaning pipeline: per-layer work across noise levels",
        "the five layers absorb device noise; event volume stays near the ideal rate",
    );
    let ticks = (2_000 / scale) as u64;
    let tags = 40u64;
    println!(
        "   {:>10} | {:>9} | {:>9} | {:>9} | {:>9} | {:>9} | {:>12}",
        "noise", "readings", "anomalies", "interp.", "dupes", "events", "readings/s"
    );
    for (name, noise) in [
        ("perfect", NoiseModel::perfect()),
        ("realistic", NoiseModel::realistic()),
        ("harsh", NoiseModel::harsh()),
    ] {
        let cfg = CleaningConfig::retail_demo();
        let registry = sase_core::event::SchemaRegistry::new();
        register_reading_schemas(&registry).unwrap();
        let mut ons = StaticOns::new();
        for t in 1..=tags {
            ons.insert(cfg.make_tag(t), &format!("p{t}"), "misc", 100);
        }
        let mut pipeline = CleaningPipeline::new(cfg.clone(), registry, Arc::new(ons));
        let mut sim = RfidSimulator::retail_demo(noise, 606);
        for t in 1..=tags {
            sim.place_tag(cfg.make_tag(t), (t % 4 + 1) as i64);
        }
        let mut readings_total = 0u64;
        let start = Instant::now();
        for tick in 0..ticks {
            let readings = sim.tick();
            readings_total += readings.len() as u64;
            pipeline.process_tick(tick, &readings).unwrap();
        }
        let secs = start.elapsed().as_secs_f64();
        let s = pipeline.stats();
        println!(
            "   {:>10} | {:>9} | {:>9} | {:>9} | {:>9} | {:>9} | {:>12}",
            name,
            readings_total,
            s.anomaly.dropped_spurious + s.anomaly.dropped_truncated,
            s.smoothing.interpolated,
            s.dedup.suppressed,
            s.events.generated,
            fmt_rate(readings_total as f64 / secs)
        );
    }
    println!();
}

/// P7 — event database: archive ingest rate and track-and-trace latency.
fn p7_event_db(scale: usize) {
    header(
        "P7",
        "event database: ingest rate and track-and-trace latency vs history size",
        "ingest stays linear; per-item trace latency stays flat thanks to the item index",
    );
    println!(
        "   {:>8} | {:>12} | {:>14} | {:>18}",
        "items", "rows", "ingest rows/s", "trace latency/item"
    );
    for items in [100usize, 400, 1600 / scale.max(1)] {
        let trace = sase_rfid::warehouse::generate(707, items, 8);
        let db = sase_db::Database::new();
        let tnt = TrackAndTrace::open(db).unwrap();
        let start = Instant::now();
        let mut rows = 0u64;
        for m in &trace.movements {
            tnt.locations()
                .update_location(m.item, m.area, m.ts as i64)
                .unwrap();
            rows += 1;
        }
        for c in &trace.containments {
            if c.added {
                tnt.containments()
                    .add_to_container(c.item, c.container, c.ts as i64)
                    .unwrap();
            } else {
                tnt.containments()
                    .remove_from_container(c.item, c.ts as i64)
                    .unwrap();
            }
            rows += 1;
        }
        let ingest_secs = start.elapsed().as_secs_f64();

        let start = Instant::now();
        for &item in &trace.items {
            let _ = tnt.current_location(item).unwrap();
            let _ = tnt.movement_history(item).unwrap();
        }
        let trace_secs = start.elapsed().as_secs_f64();
        println!(
            "   {:>8} | {:>12} | {:>14} | {:>15.1}us",
            items,
            rows,
            fmt_rate(rows as f64 / ingest_secs),
            trace_secs * 1e6 / trace.items.len() as f64
        );
    }
    println!();
}

/// P9 — engine scaling with the number of standing queries (§3: many
/// monitoring tasks and archiving rules run concurrently).
fn p9_multi_query(scale: usize) {
    header(
        "P9",
        "engine throughput vs number of registered queries",
        "per-event cost grows linearly with standing queries; no cross-query interference",
    );
    let events = 20_000 / scale;
    let (registry, stream) = retail_stream(909, events, 100);
    println!(
        "   {:>8} | {:>14} | {:>18}",
        "queries", "stream ev/s", "query-events/s"
    );
    for n in [1usize, 4, 16, 64] {
        let mut engine = engine_with_copies(&registry, &q1_query(200), n);
        let start = Instant::now();
        for e in &stream {
            engine.process(e).expect("benchmark stream");
        }
        let secs = start.elapsed().as_secs_f64();
        let rate = events as f64 / secs;
        println!(
            "   {:>8} | {:>14} | {:>18}",
            n,
            fmt_rate(rate),
            fmt_rate(rate * n as f64)
        );
    }
    println!();
}

/// P8 — language front-end throughput.
fn p8_language(scale: usize) {
    header(
        "P8",
        "parser + planner throughput",
        "query compilation is negligible next to stream processing",
    );
    let corpus = query_corpus(2_000 / scale);
    let (registry, _) = retail_stream(1, 10, 2);
    let qps = language_throughput(&corpus, &registry);
    println!(
        "   {} queries compiled: {} queries/s",
        corpus.len(),
        fmt_rate(qps)
    );
    println!();
}
