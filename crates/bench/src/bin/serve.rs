//! Emit `BENCH_serve.json`: sustained acknowledged ingest and fan-out
//! push latency (p50/p95/p99) through the network serving layer, at 128
//! standing queries with 1k+ concurrent connections.
//!
//! ```text
//! cargo run --release -p sase-bench --bin serve            # full run
//! cargo run --release -p sase-bench --bin serve -- --test  # CI smoke
//! ```
//!
//! Flags: `--test` (small fleet, shape-check only), `--out PATH`
//! (default `BENCH_serve.json`).

use sase_bench::serve::ServeParams;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test = args.iter().any(|a| a == "--test");
    let mut out_path = "BENCH_serve.json".to_string();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--out" && i + 1 < args.len() {
            out_path = args[i + 1].clone();
            i += 1;
        }
        i += 1;
    }

    let (params, mode) = if test {
        (ServeParams::test(), "test")
    } else {
        (ServeParams::full(), "full")
    };
    let json = sase_bench::serve::serve_report(params, mode);
    sase_bench::minijson::validate(&json).expect("report must be well-formed JSON");
    std::fs::write(&out_path, json.as_bytes()).expect("write report");
    println!("{json}");
    eprintln!(
        "wrote {out_path} ({} connections, {} queries, mode {mode})",
        params.ingesters + params.subscribers,
        params.queries
    );
}
