//! Emit `BENCH_ingest.json`: engine ingest throughput (events/sec) at 1,
//! 16, and 128 standing queries under scan-all routing, the type-indexed
//! router, and the sharded deployment.
//!
//! ```text
//! cargo run --release -p sase-bench --bin ingest            # full run
//! cargo run --release -p sase-bench --bin ingest -- --test  # CI smoke
//! ```
//!
//! Flags: `--test` (tiny stream, shape-check only), `--events N`,
//! `--out PATH` (default `BENCH_ingest.json`), `--shards N` (default 4).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test = args.iter().any(|a| a == "--test");
    let mut out_path = "BENCH_ingest.json".to_string();
    let mut events: usize = if test { 2_000 } else { 120_000 };
    let mut shards: usize = 4;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 1;
            }
            "--events" if i + 1 < args.len() => {
                events = args[i + 1].parse().expect("--events takes a count");
                i += 1;
            }
            "--shards" if i + 1 < args.len() => {
                shards = args[i + 1].parse().expect("--shards takes a count");
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }

    let mode = if test { "test" } else { "full" };
    let json =
        sase_bench::ingest::ingest_report(events, shards, sase_bench::ingest::INGEST_BATCH, mode);
    sase_bench::minijson::validate(&json).expect("report must be well-formed JSON");
    std::fs::write(&out_path, json.as_bytes()).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path} ({events} events, mode {mode})");
}
