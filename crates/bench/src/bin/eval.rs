//! Emit `BENCH_eval.json`: predicate-program vs tree-interpreter
//! evaluation latency per predicate shape, plus a re-run of the 128-query
//! indexed ingest workload on the new evaluation path.
//!
//! ```text
//! cargo run --release -p sase-bench --bin eval            # full run
//! cargo run --release -p sase-bench --bin eval -- --test  # CI smoke
//! ```
//!
//! Flags: `--test` (tiny sizes, shape-check only), `--iters N`,
//! `--events N` (ingest re-run stream), `--out PATH` (default
//! `BENCH_eval.json`).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test = args.iter().any(|a| a == "--test");
    let mut out_path = "BENCH_eval.json".to_string();
    let mut iters: usize = if test { 4 } else { 2_000 };
    let mut events: usize = if test { 2_000 } else { 120_000 };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 1;
            }
            "--iters" if i + 1 < args.len() => {
                iters = args[i + 1].parse().expect("--iters takes a count");
                i += 1;
            }
            "--events" if i + 1 < args.len() => {
                events = args[i + 1].parse().expect("--events takes a count");
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }

    let mode = if test { "test" } else { "full" };
    let json = sase_bench::evalbench::eval_report(iters, events, mode);
    sase_bench::minijson::validate(&json).expect("report must be well-formed JSON");
    std::fs::write(&out_path, json.as_bytes()).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path} (iters {iters}, ingest events {events}, mode {mode})");
}
