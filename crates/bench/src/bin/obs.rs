//! Emit `BENCH_obs.json`: ingest throughput at 128 standing queries with
//! metrics off vs on, plus the unit cost of one histogram/counter record
//! through resolved registry handles.
//!
//! ```text
//! cargo run --release -p sase-bench --bin obs            # full run
//! cargo run --release -p sase-bench --bin obs -- --test  # CI smoke
//! ```
//!
//! Flags: `--test` (tiny stream, shape-check only), `--events N`,
//! `--rounds N` (interleaved repetitions, default 3), `--out PATH`
//! (default `BENCH_obs.json`).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let test = args.iter().any(|a| a == "--test");
    let mut out_path = "BENCH_obs.json".to_string();
    let mut events: usize = if test { 2_000 } else { 120_000 };
    let mut rounds: usize = if test { 1 } else { 3 };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 1;
            }
            "--events" if i + 1 < args.len() => {
                events = args[i + 1].parse().expect("--events takes a count");
                i += 1;
            }
            "--rounds" if i + 1 < args.len() => {
                rounds = args[i + 1].parse().expect("--rounds takes a count");
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }

    let mode = if test { "test" } else { "full" };
    let json = sase_bench::obs::obs_report(events, rounds, mode);
    sase_bench::minijson::validate(&json).expect("report must be well-formed JSON");
    std::fs::write(&out_path, json.as_bytes()).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path} ({events} events, {rounds} rounds, mode {mode})");
}
