//! The predicate-evaluation benchmark: flat [`PredicateProgram`] bytecode
//! vs the retained [`CompiledExpr`] tree interpreter, per predicate shape,
//! plus a re-run of the ingest workload so `BENCH_eval.json` records the
//! end-to-end effect of the zero-allocation evaluation path.
//!
//! The `eval` binary renders the measurements as `BENCH_eval.json`.

use std::time::Instant;

use sase_core::engine::RoutingMode;
use sase_core::event::{retail_registry, Event, SchemaRegistry};
use sase_core::expr::CompiledExpr;
use sase_core::functions::FunctionRegistry;
use sase_core::lang::{parse_expr, parse_query};
use sase_core::pattern::CompiledPattern;
use sase_core::program::PredicateProgram;
use sase_core::value::Value;

use crate::ingest;

/// The indexed-engine throughput at 128 queries recorded by the ingest
/// bench *before* the predicate-program work landed — the baseline the
/// ISSUE's ≥1.3x end-to-end criterion measures against.
pub const INGEST_BASELINE_128Q_EV_PER_SEC: f64 = 1_548_712.5;

/// One measured predicate shape.
#[derive(Debug, Clone)]
pub struct EvalRun {
    /// Shape label.
    pub shape: String,
    /// The predicate source text.
    pub src: String,
    /// Nanoseconds per evaluation, tree interpreter.
    pub tree_ns: f64,
    /// Nanoseconds per evaluation, predicate program.
    pub program_ns: f64,
    /// `tree_ns / program_ns`.
    pub speedup: f64,
}

/// The measured shapes: label, predicate source. `equiv` is the
/// equivalence-heavy workload the acceptance criterion names.
pub fn shapes() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "equiv",
            "x.TagId = y.TagId AND y.TagId = z.TagId AND x.TagId = z.TagId",
        ),
        ("attr_lit", "x.AreaId > 1 AND x.TagId != 9999"),
        ("window_arith", "z.Timestamp - x.ts < 40"),
        ("mixed_or", "x.TagId = z.TagId OR x.AreaId < y.AreaId"),
        ("call_fn", "_abs(x.AreaId - y.AreaId) >= 1"),
    ]
}

/// A three-slot pattern over the retail types (x: SHELF, y: COUNTER,
/// z: EXIT).
fn bench_pattern(reg: &SchemaRegistry) -> CompiledPattern {
    let q = parse_query("EVENT SEQ(SHELF_READING x, COUNTER_READING y, EXIT_READING z) WITHIN 100")
        .unwrap();
    CompiledPattern::compile(&q.pattern, reg).unwrap()
}

/// Deterministic pool of fully-bound three-event matches.
fn bindings(reg: &SchemaRegistry, n: usize) -> Vec<Vec<Event>> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|i| {
            let tag = (next() % 16) as i64;
            let same = next() % 2 == 0;
            let tag2 = if same { tag } else { (next() % 16) as i64 };
            let mk = |ty: &str, ts: u64, tag: i64, area: i64| {
                reg.build_event(
                    ty,
                    ts,
                    vec![Value::Int(tag), Value::str("p"), Value::Int(area)],
                )
                .unwrap()
            };
            let base = i as u64 * 3 + 1;
            vec![
                mk("SHELF_READING", base, tag, 1 + (next() % 4) as i64),
                mk("COUNTER_READING", base + 1, tag2, 3),
                mk("EXIT_READING", base + 2, tag, 4),
            ]
        })
        .collect()
}

/// Measure one shape: `iters` passes over the binding pool for each
/// evaluator.
pub fn run_shape(
    reg: &SchemaRegistry,
    pattern: &CompiledPattern,
    shape: &str,
    src: &str,
    pool: &[Vec<Event>],
    iters: usize,
) -> EvalRun {
    let slots = pattern.slot_table();
    let ast = parse_expr(src).expect("bench predicate parses");
    let tree = CompiledExpr::compile(&ast, &slots[..], &FunctionRegistry::with_stdlib())
        .expect("bench predicate compiles");
    let program =
        PredicateProgram::from_expr(tree.clone(), pattern, reg).expect("program compiles");

    // Warm both paths (dynamic-resolution memos, branch predictors).
    let mut hits = 0usize;
    for m in pool {
        hits += tree.eval_bool(&m[..]).unwrap() as usize;
        hits += program.eval_bool(&m[..]).unwrap() as usize;
    }

    let evals = (iters * pool.len()) as f64;
    let start = Instant::now();
    for _ in 0..iters {
        for m in pool {
            hits += tree.eval_bool(&m[..]).unwrap() as usize;
        }
    }
    let tree_ns = start.elapsed().as_nanos() as f64 / evals;

    let start = Instant::now();
    for _ in 0..iters {
        for m in pool {
            hits += program.eval_bool(&m[..]).unwrap() as usize;
        }
    }
    let program_ns = start.elapsed().as_nanos() as f64 / evals;
    std::hint::black_box(hits);

    EvalRun {
        shape: shape.to_string(),
        src: src.to_string(),
        tree_ns,
        program_ns,
        speedup: tree_ns / program_ns.max(1e-9),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Run the full measurement matrix and render `BENCH_eval.json`.
///
/// `iters` scales the per-shape work; `ingest_events` the re-run ingest
/// stream (the `--test` smoke run uses tiny sizes, so only the full run's
/// numbers are meaningful).
pub fn eval_report(iters: usize, ingest_events: usize, mode_label: &str) -> String {
    let reg = retail_registry();
    let pattern = bench_pattern(&reg);
    let pool = bindings(&reg, 512);

    let runs: Vec<EvalRun> = shapes()
        .into_iter()
        .map(|(shape, src)| run_shape(&reg, &pattern, shape, src, &pool, iters))
        .collect();
    let equiv_speedup = runs
        .iter()
        .find(|r| r.shape == "equiv")
        .map(|r| r.speedup)
        .unwrap_or(0.0);

    // Re-run the ingest workload (indexed routing, 128 standing queries)
    // on the new evaluation path. Best of two passes: the first pass pays
    // cold caches and allocator warm-up for the whole stream.
    let (ingest_registry, events) = ingest::ingest_stream(ingest_events, 7);
    let measure = || {
        ingest::run_ingest_engine(
            &ingest_registry,
            &events,
            128,
            RoutingMode::Indexed,
            ingest::INGEST_BATCH,
        )
    };
    let (first, second) = (measure(), measure());
    assert_eq!(
        first.matches, second.matches,
        "ingest runs are deterministic"
    );
    let ingest_run = if second.events_per_sec > first.events_per_sec {
        second
    } else {
        first
    };

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"eval\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape(mode_label)));
    out.push_str(&format!("  \"bindings\": {},\n", pool.len()));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str("  \"shapes\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shape\": \"{}\", \"predicate\": \"{}\", \"tree_ns_per_eval\": {:.1}, \
             \"program_ns_per_eval\": {:.1}, \"speedup\": {:.2}}}{}\n",
            json_escape(&r.shape),
            json_escape(&r.src),
            r.tree_ns,
            r.program_ns,
            r.speedup,
            if i + 1 == runs.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_program_vs_tree_equiv\": {equiv_speedup:.2},\n"
    ));
    out.push_str("  \"speedup_target\": 2.5,\n");
    out.push_str(&format!(
        "  \"ingest_rerun\": {{\"queries\": 128, \"routing\": \"indexed\", \
         \"events\": {}, \"events_per_sec\": {:.1}, \"matches\": {}, \
         \"baseline_events_per_sec\": {INGEST_BASELINE_128Q_EV_PER_SEC:.1}, \
         \"speedup_vs_baseline\": {:.2}}}\n",
        events.len(),
        ingest_run.events_per_sec,
        ingest_run.matches,
        ingest_run.events_per_sec / INGEST_BASELINE_128Q_EV_PER_SEC,
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minijson;

    #[test]
    fn report_is_wellformed_json() {
        let json = eval_report(2, 400, "test");
        minijson::validate(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"bench\": \"eval\""));
        assert!(json.contains("\"speedup_program_vs_tree_equiv\""));
        assert!(json.contains("\"ingest_rerun\""));
        for (shape, _) in shapes() {
            assert!(json.contains(&format!("\"shape\": \"{shape}\"")), "{shape}");
        }
    }

    /// Program and tree agree on every pooled binding for every shape (the
    /// bench's own sanity differential; the exhaustive one is a property
    /// test in sase-core).
    #[test]
    fn program_and_tree_agree_on_pool() {
        let reg = retail_registry();
        let pattern = bench_pattern(&reg);
        let pool = bindings(&reg, 64);
        let slots = pattern.slot_table();
        for (_, src) in shapes() {
            let ast = parse_expr(src).unwrap();
            let tree =
                CompiledExpr::compile(&ast, &slots[..], &FunctionRegistry::with_stdlib()).unwrap();
            let program = PredicateProgram::from_expr(tree.clone(), &pattern, &reg).unwrap();
            for m in &pool {
                assert_eq!(
                    tree.eval_bool(&m[..]).unwrap(),
                    program.eval_bool(&m[..]).unwrap(),
                    "{src}"
                );
            }
        }
    }
}
