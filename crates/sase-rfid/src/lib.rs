//! # sase-rfid — the simulated physical device layer
//!
//! Substitutes for the paper's RFID hardware (ThingMagic Mercury 4 Agile
//! reader, Alien EPC Class1 Gen1 tags): a discrete-event simulator of
//! readers, tags, and read-range noise, plus the scripted behaviours of the
//! demonstration scenario (§4) and synthetic workload generators for the
//! performance experiments.
//!
//! * [`sim`] — readers/tags/areas and the per-scan-cycle noise model
//! * [`noise`] — the error classes the cleaning layer exists to fix
//! * [`scenario`] — scripted shoppers, shoplifters, and misplaced inventory
//! * [`warehouse`] — supply-chain traces for the event database
//! * [`generator`] — parameterized synthetic event streams for benchmarks
//! * [`wire`] — the framed binary reading format ("communication over
//!   socket", Figure 1)

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generator;
pub mod noise;
pub mod scenario;
pub mod sim;
pub mod warehouse;
pub mod wire;

pub use noise::NoiseModel;
pub use scenario::{Action, GroundTruth, RetailScenario, ScheduledAction};
pub use sim::{RfidSimulator, SimReader};
pub use warehouse::{ContainmentChange, Movement, WarehouseTrace};
pub use wire::{decode_frame, encode_frame, WireError};
