//! The discrete-event RFID device simulator.
//!
//! Substitutes for the paper's physical device layer (a ThingMagic Mercury 4
//! Agile reader with multiple antennas and Alien EPC Class1 Gen1 tags): the
//! event processor only ever sees `(TagId, ReaderId)` readings, and the
//! simulator produces the same stream, with the same loss/noise
//! idiosyncrasies (see [`crate::noise`]).
//!
//! The simulator tracks which logical area every tag is in. Each scan cycle
//! ([`RfidSimulator::tick`]), every reader captures the tags in its area
//! subject to the noise model, possibly also capturing tags of adjacent
//! areas (overlapping read ranges), emitting ghost codes, or truncating
//! captures.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sase_stream::config::CleaningConfig;
use sase_stream::reading::{RawReading, RawTag, ReaderId, Tick};

use crate::noise::NoiseModel;

/// A simulated reader: an antenna covering one logical area, optionally
/// overlapping adjacent areas.
#[derive(Debug, Clone)]
pub struct SimReader {
    /// The reader id carried in readings.
    pub id: ReaderId,
    /// The area the reader primarily covers.
    pub area: i64,
    /// Areas whose tags this reader can also capture (overlap).
    pub overlaps: Vec<i64>,
}

/// The device simulator.
#[derive(Debug)]
pub struct RfidSimulator {
    readers: Vec<SimReader>,
    /// tag code -> current area (absent = not in any covered area).
    positions: HashMap<u64, i64>,
    noise: NoiseModel,
    rng: StdRng,
    tick: Tick,
    ghost_counter: u64,
}

impl RfidSimulator {
    /// Create a simulator with explicit readers.
    pub fn new(readers: Vec<SimReader>, noise: NoiseModel, seed: u64) -> Self {
        RfidSimulator {
            readers,
            positions: HashMap::new(),
            noise,
            rng: StdRng::seed_from_u64(seed),
            tick: 0,
            ghost_counter: 0,
        }
    }

    /// The paper's demo floor (Figure 2): one reader on each of two
    /// shelves, the check-out counter, and the exit — matching
    /// [`CleaningConfig::retail_demo`]. Per the paper, "each reader
    /// occupies only one logical area": ranges do not overlap. Use
    /// [`RfidSimulator::new`] with explicit `overlaps` to model overlapping
    /// ranges or redundant setups.
    pub fn retail_demo(noise: NoiseModel, seed: u64) -> Self {
        let readers = (1..=4)
            .map(|id| SimReader {
                id,
                area: id as i64,
                overlaps: Vec::new(),
            })
            .collect();
        Self::new(readers, noise, seed)
    }

    /// Current scan-cycle index.
    pub fn now(&self) -> Tick {
        self.tick
    }

    /// Put (or move) a tag into an area.
    pub fn place_tag(&mut self, tag: u64, area: i64) {
        self.positions.insert(tag, area);
    }

    /// Remove a tag from coverage (left the store).
    pub fn remove_tag(&mut self, tag: u64) {
        self.positions.remove(&tag);
    }

    /// Where a tag currently is, if covered.
    pub fn tag_area(&self, tag: u64) -> Option<i64> {
        self.positions.get(&tag).copied()
    }

    /// Number of tags currently covered.
    pub fn tags_in_store(&self) -> usize {
        self.positions.len()
    }

    /// Run one scan cycle: every reader scans its range; returns the raw
    /// readings of the cycle (reader order, tag order randomized by hash).
    pub fn tick(&mut self) -> Vec<RawReading> {
        let t = self.tick;
        self.tick += 1;
        let mut out = Vec::new();
        // Collect (tag, area) pairs once; iteration order of the HashMap is
        // not deterministic, so sort for reproducibility.
        let mut tags: Vec<(u64, i64)> = self.positions.iter().map(|(k, v)| (*k, *v)).collect();
        tags.sort_unstable();

        for reader in &self.readers {
            for &(tag, area) in &tags {
                let in_primary = area == reader.area;
                let in_overlap = reader.overlaps.contains(&area);
                if !in_primary && !in_overlap {
                    continue;
                }
                let capture_prob = if in_primary {
                    self.noise.read_prob
                } else {
                    self.noise.overlap_prob
                };
                if !self.rng.gen_bool(capture_prob) {
                    continue;
                }
                let tag_field = if self.rng.gen_bool(self.noise.truncate_prob) {
                    RawTag::Truncated {
                        partial: tag & 0xFFFF,
                        bits: 16,
                    }
                } else {
                    RawTag::Full(tag)
                };
                out.push(RawReading {
                    tag: tag_field,
                    reader: reader.id,
                    tick: t,
                });
            }
            // Ghost reading: an implausible code out of thin air.
            if self.rng.gen_bool(self.noise.ghost_prob) {
                self.ghost_counter += 1;
                out.push(RawReading {
                    tag: RawTag::Full(0xBAD0_0000_0000_0000 | self.ghost_counter),
                    reader: reader.id,
                    tick: t,
                });
            }
        }
        out
    }

    /// Convenience: check the simulator's readers are consistent with a
    /// cleaning configuration (every reader associated, areas agree).
    pub fn matches_config(&self, cfg: &CleaningConfig) -> bool {
        self.readers.iter().all(|r| {
            cfg.area_of(r.id)
                .map(|a| a.area_id == r.area)
                .unwrap_or(false)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_devices_read_every_tag_every_tick() {
        let cfg = CleaningConfig::retail_demo();
        let mut sim = RfidSimulator::retail_demo(NoiseModel::perfect(), 1);
        assert!(sim.matches_config(&cfg));
        sim.place_tag(cfg.make_tag(1), 1);
        sim.place_tag(cfg.make_tag(2), 4);
        let readings = sim.tick();
        assert_eq!(readings.len(), 2);
        assert!(readings.iter().all(|r| matches!(r.tag, RawTag::Full(_))));
        assert_eq!(sim.now(), 1);
    }

    #[test]
    fn movement_changes_reader() {
        let cfg = CleaningConfig::retail_demo();
        let mut sim = RfidSimulator::retail_demo(NoiseModel::perfect(), 1);
        let tag = cfg.make_tag(5);
        sim.place_tag(tag, 1);
        assert_eq!(sim.tick()[0].reader, 1);
        sim.place_tag(tag, 3);
        assert_eq!(sim.tag_area(tag), Some(3));
        assert_eq!(sim.tick()[0].reader, 3);
        sim.remove_tag(tag);
        assert!(sim.tick().is_empty());
        assert_eq!(sim.tags_in_store(), 0);
    }

    #[test]
    fn harsh_noise_produces_all_error_classes() {
        let cfg = CleaningConfig::retail_demo();
        // Two shelf readers with overlapping ranges, to exercise
        // cross-reader duplicates on top of the demo floor.
        let readers = vec![
            SimReader {
                id: 1,
                area: 1,
                overlaps: vec![2],
            },
            SimReader {
                id: 2,
                area: 2,
                overlaps: vec![1],
            },
            SimReader {
                id: 3,
                area: 3,
                overlaps: vec![],
            },
            SimReader {
                id: 4,
                area: 4,
                overlaps: vec![],
            },
        ];
        let mut sim = RfidSimulator::new(readers, NoiseModel::harsh(), 42);
        for item in 0..20 {
            sim.place_tag(cfg.make_tag(item), (item % 4 + 1) as i64);
        }
        let mut truncated = 0;
        let mut ghosts = 0;
        let mut overlap_dups = 0;
        let mut misses = 0;
        for _ in 0..200 {
            let readings = sim.tick();
            let full_reads = readings
                .iter()
                .filter(|r| matches!(r.tag, RawTag::Full(c) if cfg.is_valid_tag(c)))
                .count();
            if full_reads < 20 {
                misses += 1;
            }
            for r in &readings {
                match r.tag {
                    RawTag::Truncated { .. } => truncated += 1,
                    RawTag::Full(c) if !cfg.is_valid_tag(c) => ghosts += 1,
                    RawTag::Full(c) => {
                        // Overlap: read by a reader whose primary area is
                        // not the tag's area.
                        let area = sim.tag_area(c).unwrap();
                        let primary = (area) as u32; // reader ids equal areas in demo
                        if r.reader != primary {
                            overlap_dups += 1;
                        }
                    }
                }
            }
        }
        assert!(truncated > 0, "expected truncated captures");
        assert!(ghosts > 0, "expected ghost readings");
        assert!(overlap_dups > 0, "expected overlap duplicates");
        assert!(misses > 0, "expected missed reads");
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let cfg = CleaningConfig::retail_demo();
        let run = |seed: u64| {
            let mut sim = RfidSimulator::retail_demo(NoiseModel::realistic(), seed);
            for item in 0..5 {
                sim.place_tag(cfg.make_tag(item), 1);
            }
            let mut all = Vec::new();
            for _ in 0..50 {
                all.extend(sim.tick());
            }
            all
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
