//! Wire format for raw readings.
//!
//! Figure 1 annotates the link between the physical device layer and the
//! rest of SASE as "communication over socket": readers ship raw readings
//! as framed binary messages. This module implements that frame format so
//! the threaded deployment (`sase-system::concurrent`) can move readings
//! between stages exactly as a socket would — and so tests can exercise
//! corrupted/truncated frames.
//!
//! ## Frame layout (big-endian)
//!
//! ```text
//! magic     u16   0x5A5E ("SASE")
//! tick      u64   scan cycle of every reading in the frame
//! count     u16   number of readings
//! readings  count × {
//!   reader  u32
//!   kind    u8    0 = full code, 1 = truncated
//!   code    u64   full code, or the partial bits
//!   bits    u8    valid low bits (only meaningful when kind = 1)
//! }
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use sase_stream::reading::{RawReading, RawTag, Tick};

/// Frame magic number.
pub const MAGIC: u16 = 0x5A5E;

/// Errors decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than a header, or than `count` readings require.
    Truncated,
    /// Bad magic number.
    BadMagic(u16),
    /// Unknown tag-kind discriminant.
    BadKind(u8),
    /// The frame mixes ticks (readings must share the frame's tick).
    MixedTicks,
    /// Garbage bytes follow the declared reading count. A frame must be
    /// exactly as long as its header says: trailing bytes mean a framing
    /// bug or corruption, and accepting them would let it go unnoticed
    /// (the durable store reuses this framing discipline).
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#06x}"),
            WireError::BadKind(k) => write!(f, "unknown tag kind {k}"),
            WireError::MixedTicks => write!(f, "frame mixes scan cycles"),
            WireError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the declared readings")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encode one scan cycle's readings into a frame.
///
/// Every reading must carry `tick` (a frame is one scan cycle); violations
/// are reported as [`WireError::MixedTicks`].
pub fn encode_frame(tick: Tick, readings: &[RawReading]) -> Result<Bytes, WireError> {
    if readings.iter().any(|r| r.tick != tick) {
        return Err(WireError::MixedTicks);
    }
    let mut buf = BytesMut::with_capacity(12 + readings.len() * 14);
    buf.put_u16(MAGIC);
    buf.put_u64(tick);
    buf.put_u16(readings.len() as u16);
    for r in readings {
        buf.put_u32(r.reader);
        match r.tag {
            RawTag::Full(code) => {
                buf.put_u8(0);
                buf.put_u64(code);
                buf.put_u8(0);
            }
            RawTag::Truncated { partial, bits } => {
                buf.put_u8(1);
                buf.put_u64(partial);
                buf.put_u8(bits);
            }
        }
    }
    Ok(buf.freeze())
}

/// Decode a frame back into `(tick, readings)`.
pub fn decode_frame(mut frame: Bytes) -> Result<(Tick, Vec<RawReading>), WireError> {
    if frame.remaining() < 12 {
        return Err(WireError::Truncated);
    }
    let magic = frame.get_u16();
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let tick = frame.get_u64();
    let count = frame.get_u16() as usize;
    if frame.remaining() < count * 14 {
        return Err(WireError::Truncated);
    }
    let mut readings = Vec::with_capacity(count);
    for _ in 0..count {
        let reader = frame.get_u32();
        let kind = frame.get_u8();
        let code = frame.get_u64();
        let bits = frame.get_u8();
        let tag = match kind {
            0 => RawTag::Full(code),
            1 => RawTag::Truncated {
                partial: code,
                bits,
            },
            k => return Err(WireError::BadKind(k)),
        };
        readings.push(RawReading { tag, reader, tick });
    }
    if frame.has_remaining() {
        return Err(WireError::TrailingBytes(frame.remaining()));
    }
    Ok((tick, readings))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tick: Tick) -> Vec<RawReading> {
        vec![
            RawReading::full(0xEC00_0000_0000_002A, 1, tick),
            RawReading {
                tag: RawTag::Truncated {
                    partial: 0xBEEF,
                    bits: 16,
                },
                reader: 4,
                tick,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let readings = sample(7);
        let frame = encode_frame(7, &readings).unwrap();
        let (tick, decoded) = decode_frame(frame).unwrap();
        assert_eq!(tick, 7);
        assert_eq!(decoded, readings);
    }

    #[test]
    fn empty_frame_round_trips() {
        let frame = encode_frame(3, &[]).unwrap();
        let (tick, decoded) = decode_frame(frame).unwrap();
        assert_eq!(tick, 3);
        assert!(decoded.is_empty());
    }

    #[test]
    fn mixed_ticks_rejected() {
        let mut readings = sample(7);
        readings.push(RawReading::full(1, 1, 8));
        assert_eq!(encode_frame(7, &readings), Err(WireError::MixedTicks));
    }

    #[test]
    fn corrupted_frames_rejected() {
        let frame = encode_frame(7, &sample(7)).unwrap();
        // Truncation at every prefix length must error, never panic.
        for cut in 0..frame.len() {
            let prefix = frame.slice(0..cut);
            assert!(decode_frame(prefix).is_err(), "prefix of {cut} bytes");
        }
        // Bad magic.
        let mut bad = BytesMut::from(&frame[..]);
        bad[0] = 0;
        assert!(matches!(
            decode_frame(bad.freeze()),
            Err(WireError::BadMagic(_))
        ));
        // Bad kind discriminant (first reading's kind byte = offset 16).
        let mut bad = BytesMut::from(&frame[..]);
        bad[16] = 9;
        assert_eq!(decode_frame(bad.freeze()), Err(WireError::BadKind(9)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        // Regression: frames with bytes after the declared reading count
        // used to decode successfully, silently ignoring the garbage.
        let frame = encode_frame(7, &sample(7)).unwrap();
        for extra in 1..4usize {
            let mut padded = BytesMut::from(&frame[..]);
            padded.extend_from_slice(&vec![0xAB; extra]);
            assert_eq!(
                decode_frame(padded.freeze()),
                Err(WireError::TrailingBytes(extra)),
                "{extra} trailing bytes"
            );
        }
        // An exact frame still round-trips.
        assert!(decode_frame(frame).is_ok());
    }

    #[test]
    fn error_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::BadMagic(3).to_string().contains("magic"));
        assert!(WireError::TrailingBytes(5)
            .to_string()
            .contains("5 trailing"));
    }
}
