//! Scripted retail behaviours (§4's live demonstration, simulated).
//!
//! In the paper's demo, people physically walked tagged items through the
//! booth: honest shoppers (shelf → counter → exit), shoplifters (shelf →
//! exit, skipping the counter), and misplaced inventory (moved to the wrong
//! shelf). Here the same behaviours are scripted as timed actions against
//! the [`crate::sim::RfidSimulator`], with the ground truth recorded so
//! tests can assert that the monitoring queries detect exactly the planted
//! behaviours.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sase_stream::config::CleaningConfig;
use sase_stream::reading::Tick;

use crate::sim::RfidSimulator;

/// A movement primitive applied to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Put (or move) a tag into an area.
    Place {
        /// The full tag code.
        tag: u64,
        /// Target area.
        area: i64,
    },
    /// Remove a tag from reader coverage (carried around / left the store).
    Remove {
        /// The full tag code.
        tag: u64,
    },
}

/// An action scheduled for a scan cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledAction {
    /// When to apply it.
    pub tick: Tick,
    /// What to do.
    pub action: Action,
}

/// Ground truth of a generated scenario, by item id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// Items that leave through the exit without visiting the counter —
    /// the shoplifting query must flag exactly these.
    pub shoplifted: Vec<i64>,
    /// Items that end up on the wrong shelf — the misplaced-inventory
    /// query must flag exactly these.
    pub misplaced: Vec<i64>,
    /// Items that check out properly — these must *not* be flagged.
    pub honest: Vec<i64>,
    /// New inventory stocked onto a shelf mid-scenario — these stay in the
    /// store and must not be flagged by anything.
    pub restocked: Vec<i64>,
}

/// A scripted retail scenario.
#[derive(Debug, Clone)]
pub struct RetailScenario {
    schedule: Vec<ScheduledAction>,
    /// Ground truth for assertions.
    pub truth: GroundTruth,
    /// Scan cycles the scenario spans.
    pub duration: Tick,
}

/// Demo-floor constants (Figure 2): areas 1 and 2 are shelves, 3 the
/// check-out counter, 4 the exit.
pub const SHELF_1: i64 = 1;
/// Second shelf area.
pub const SHELF_2: i64 = 2;
/// Check-out counter area.
pub const COUNTER: i64 = 3;
/// Exit area.
pub const EXIT: i64 = 4;

impl RetailScenario {
    /// Build a scenario with the given cast. Item ids are assigned
    /// sequentially from 1; every item starts on a shelf at tick 0.
    ///
    /// Honest shoppers: shelf → (carried) → counter → exit → gone.
    /// Shoplifters: shelf → (carried) → exit → gone, never at the counter.
    /// Misplacers: shelf A → shelf B, where B is not the item's home shelf.
    pub fn build(
        cfg: &CleaningConfig,
        seed: u64,
        honest: usize,
        shoplifters: usize,
        misplaced: usize,
    ) -> Self {
        Self::build_full(cfg, seed, honest, shoplifters, misplaced, 0)
    }

    /// [`RetailScenario::build`] plus `restocked` restocking events: new
    /// items appearing on a shelf mid-scenario (staff stocking shelves),
    /// which no monitoring query may flag.
    pub fn build_full(
        cfg: &CleaningConfig,
        seed: u64,
        honest: usize,
        shoplifters: usize,
        misplaced: usize,
        restocked: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = Vec::new();
        let mut truth = GroundTruth::default();
        let mut item: i64 = 0;
        let mut next_slot: Tick = 0;

        // Stagger agents so their journeys interleave realistically.
        let mut stagger = |rng: &mut StdRng| -> Tick {
            let s = next_slot;
            next_slot += rng.gen_range(1..4u64);
            s
        };

        for _ in 0..honest {
            item += 1;
            let tag = cfg.make_tag(item as u64);
            let home = if rng.gen_bool(0.5) { SHELF_1 } else { SHELF_2 };
            let start = stagger(&mut rng);
            let pick = start + rng.gen_range(3..8u64);
            let at_counter = pick + rng.gen_range(2..6u64);
            let at_exit = at_counter + rng.gen_range(4..9u64);
            let gone = at_exit + rng.gen_range(3..7u64);
            schedule.push(ScheduledAction {
                tick: start,
                action: Action::Place { tag, area: home },
            });
            schedule.push(ScheduledAction {
                tick: pick,
                action: Action::Remove { tag },
            });
            schedule.push(ScheduledAction {
                tick: at_counter,
                action: Action::Place { tag, area: COUNTER },
            });
            schedule.push(ScheduledAction {
                tick: at_exit,
                action: Action::Place { tag, area: EXIT },
            });
            schedule.push(ScheduledAction {
                tick: gone,
                action: Action::Remove { tag },
            });
            truth.honest.push(item);
        }

        for _ in 0..shoplifters {
            item += 1;
            let tag = cfg.make_tag(item as u64);
            let home = if rng.gen_bool(0.5) { SHELF_1 } else { SHELF_2 };
            let start = stagger(&mut rng);
            let pick = start + rng.gen_range(3..8u64);
            let at_exit = pick + rng.gen_range(2..6u64);
            let gone = at_exit + rng.gen_range(3..7u64);
            schedule.push(ScheduledAction {
                tick: start,
                action: Action::Place { tag, area: home },
            });
            schedule.push(ScheduledAction {
                tick: pick,
                action: Action::Remove { tag },
            });
            schedule.push(ScheduledAction {
                tick: at_exit,
                action: Action::Place { tag, area: EXIT },
            });
            schedule.push(ScheduledAction {
                tick: gone,
                action: Action::Remove { tag },
            });
            truth.shoplifted.push(item);
        }

        for _ in 0..misplaced {
            item += 1;
            let tag = cfg.make_tag(item as u64);
            let (home, wrong) = if rng.gen_bool(0.5) {
                (SHELF_1, SHELF_2)
            } else {
                (SHELF_2, SHELF_1)
            };
            let start = stagger(&mut rng);
            let moved = start + rng.gen_range(4..10u64);
            schedule.push(ScheduledAction {
                tick: start,
                action: Action::Place { tag, area: home },
            });
            schedule.push(ScheduledAction {
                tick: moved,
                action: Action::Place { tag, area: wrong },
            });
            truth.misplaced.push(item);
        }

        for _ in 0..restocked {
            item += 1;
            let tag = cfg.make_tag(item as u64);
            let shelf = if rng.gen_bool(0.5) { SHELF_1 } else { SHELF_2 };
            // Restocking happens later than the initial placements.
            let when = stagger(&mut rng) + rng.gen_range(6..12u64);
            schedule.push(ScheduledAction {
                tick: when,
                action: Action::Place { tag, area: shelf },
            });
            truth.restocked.push(item);
        }

        schedule.sort_by_key(|a| a.tick);
        let duration = schedule.last().map(|a| a.tick + 5).unwrap_or(0);
        RetailScenario {
            schedule,
            truth,
            duration,
        }
    }

    /// The full schedule, tick-sorted.
    pub fn schedule(&self) -> &[ScheduledAction] {
        &self.schedule
    }

    /// Apply all actions due at `tick` to the simulator.
    pub fn apply_tick(&self, sim: &mut RfidSimulator, tick: Tick) {
        for a in self.schedule.iter().filter(|a| a.tick == tick) {
            match a.action {
                Action::Place { tag, area } => sim.place_tag(tag, area),
                Action::Remove { tag } => sim.remove_tag(tag),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;

    #[test]
    fn cast_sizes_and_truth() {
        let cfg = CleaningConfig::retail_demo();
        let s = RetailScenario::build(&cfg, 11, 3, 2, 1);
        assert_eq!(s.truth.honest.len(), 3);
        assert_eq!(s.truth.shoplifted.len(), 2);
        assert_eq!(s.truth.misplaced.len(), 1);
        // Item ids unique across casts.
        let mut all: Vec<i64> = s
            .truth
            .honest
            .iter()
            .chain(&s.truth.shoplifted)
            .chain(&s.truth.misplaced)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 6);
        assert!(s.duration > 0);
    }

    #[test]
    fn schedule_is_tick_sorted_and_deterministic() {
        let cfg = CleaningConfig::retail_demo();
        let a = RetailScenario::build(&cfg, 11, 5, 5, 5);
        let b = RetailScenario::build(&cfg, 11, 5, 5, 5);
        assert_eq!(a.schedule(), b.schedule());
        assert!(a.schedule().windows(2).all(|w| w[0].tick <= w[1].tick));
    }

    #[test]
    fn shoplifter_never_visits_counter() {
        let cfg = CleaningConfig::retail_demo();
        let s = RetailScenario::build(&cfg, 3, 0, 4, 0);
        for item in &s.truth.shoplifted {
            let tag = cfg.make_tag(*item as u64);
            let visits_counter = s.schedule().iter().any(|a| {
                matches!(a.action, Action::Place { tag: t, area } if t == tag && area == COUNTER)
            });
            assert!(!visits_counter);
            let visits_exit = s.schedule().iter().any(
                |a| matches!(a.action, Action::Place { tag: t, area } if t == tag && area == EXIT),
            );
            assert!(visits_exit);
        }
    }

    #[test]
    fn playback_moves_tags_through_simulator() {
        let cfg = CleaningConfig::retail_demo();
        let s = RetailScenario::build(&cfg, 5, 1, 1, 0);
        let mut sim = RfidSimulator::retail_demo(NoiseModel::perfect(), 5);
        let mut saw_exit_reading = false;
        for tick in 0..s.duration {
            s.apply_tick(&mut sim, tick);
            for r in sim.tick() {
                if r.reader == 4 {
                    saw_exit_reading = true;
                }
            }
        }
        assert!(saw_exit_reading);
        // Everyone who exits is eventually removed.
        assert_eq!(
            sim.tags_in_store(),
            s.truth.misplaced.len(),
            "only misplaced items remain in store"
        );
    }
}

#[cfg(test)]
mod restock_tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::sim::RfidSimulator;

    #[test]
    fn restocked_items_appear_and_stay() {
        let cfg = CleaningConfig::retail_demo();
        let s = RetailScenario::build_full(&cfg, 21, 1, 1, 0, 3);
        assert_eq!(s.truth.restocked.len(), 3);
        let mut sim = RfidSimulator::retail_demo(NoiseModel::perfect(), 1);
        for tick in 0..s.duration {
            s.apply_tick(&mut sim, tick);
            sim.tick();
        }
        for &item in &s.truth.restocked {
            let area = sim.tag_area(cfg.make_tag(item as u64));
            assert!(
                matches!(area, Some(SHELF_1) | Some(SHELF_2)),
                "restocked item {item} is on a shelf: {area:?}"
            );
        }
    }

    #[test]
    fn build_delegates_with_zero_restock() {
        let cfg = CleaningConfig::retail_demo();
        let a = RetailScenario::build(&cfg, 4, 2, 1, 1);
        let b = RetailScenario::build_full(&cfg, 4, 2, 1, 1, 0);
        assert_eq!(a.schedule(), b.schedule());
        assert!(a.truth.restocked.is_empty());
    }
}
