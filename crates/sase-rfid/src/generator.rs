//! Synthetic event-stream workloads for the performance experiments.
//!
//! The benchmark suite (P1–P5 in DESIGN.md) measures the event processor on
//! parameterized streams, following the evaluation methodology of the
//! paper's companion system paper: streams with a controlled number of
//! value partitions (distinct tag ids), a controlled event-type mix, and a
//! controlled arrival rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sase_core::event::{Event, SchemaRegistry};
use sase_core::value::{Value, ValueType};

/// Parameters of a synthetic stream.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// RNG seed; equal configs generate identical streams.
    pub seed: u64,
    /// Number of events to generate.
    pub events: usize,
    /// Number of distinct `TagId` values (value partitions).
    pub partitions: usize,
    /// Event-type mix: `(type name, weight)`. Weights need not sum to
    /// anything in particular.
    pub type_mix: Vec<(String, u32)>,
    /// Timestamps advance by a value drawn uniformly from
    /// `1..=max_ts_step` per event (strictly increasing).
    pub max_ts_step: u64,
    /// Number of distinct `AreaId` values.
    pub areas: i64,
}

impl SyntheticConfig {
    /// A retail-shaped mix over the three demo reading types.
    pub fn retail(seed: u64, events: usize, partitions: usize) -> Self {
        SyntheticConfig {
            seed,
            events,
            partitions,
            type_mix: vec![
                ("SHELF_READING".to_string(), 5),
                ("COUNTER_READING".to_string(), 3),
                ("EXIT_READING".to_string(), 2),
            ],
            max_ts_step: 1,
            areas: 4,
        }
    }
}

/// Register the synthetic stream's schemas (the retail reading triple) on a
/// fresh registry. Additional custom types named in `type_mix` are
/// registered with the same attribute triple.
pub fn registry_for(cfg: &SyntheticConfig) -> SchemaRegistry {
    let registry = SchemaRegistry::new();
    for (name, _) in &cfg.type_mix {
        registry
            .register(
                name,
                &[
                    ("TagId", ValueType::Int),
                    ("ProductName", ValueType::Str),
                    ("AreaId", ValueType::Int),
                ],
            )
            .expect("fresh registry");
    }
    registry
}

/// Generate the stream for a config against a registry that has the
/// config's event types registered.
pub fn generate(registry: &SchemaRegistry, cfg: &SyntheticConfig) -> Vec<Event> {
    assert!(cfg.partitions > 0, "at least one partition");
    assert!(!cfg.type_mix.is_empty(), "at least one event type");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total_weight: u32 = cfg.type_mix.iter().map(|(_, w)| *w).sum();
    assert!(total_weight > 0, "weights must not all be zero");

    let mut out = Vec::with_capacity(cfg.events);
    let mut ts: u64 = 0;
    for _ in 0..cfg.events {
        ts += rng.gen_range(1..=cfg.max_ts_step.max(1));
        let mut pick = rng.gen_range(0..total_weight);
        let ty = cfg
            .type_mix
            .iter()
            .find(|(_, w)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .map(|(n, _)| n.as_str())
            .expect("weights sum checked");
        let tag = rng.gen_range(0..cfg.partitions) as i64;
        let area = rng.gen_range(1..=cfg.areas.max(1));
        let event = registry
            .build_event(
                ty,
                ts,
                vec![
                    Value::Int(tag),
                    Value::str(format!("product-{tag}")),
                    Value::Int(area),
                ],
            )
            .expect("schema registered by registry_for");
        out.push(event);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_shape() {
        let cfg = SyntheticConfig::retail(1, 1000, 10);
        let reg = registry_for(&cfg);
        let events = generate(&reg, &cfg);
        assert_eq!(events.len(), 1000);
        // Strictly increasing timestamps.
        assert!(events
            .windows(2)
            .all(|w| w[0].timestamp() < w[1].timestamp()));
        // All partitions used.
        let mut tags: Vec<i64> = events
            .iter()
            .map(|e| e.attr("TagId").unwrap().as_int().unwrap())
            .collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 10);
        // Mix roughly follows the weights (5:3:2 over 1000 events).
        let shelves = events
            .iter()
            .filter(|e| e.type_name() == "SHELF_READING")
            .count();
        assert!((350..650).contains(&shelves), "shelves: {shelves}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig::retail(7, 100, 5);
        let reg = registry_for(&cfg);
        let a: Vec<u64> = generate(&reg, &cfg).iter().map(|e| e.timestamp()).collect();
        let b: Vec<u64> = generate(&reg, &cfg).iter().map(|e| e.timestamp()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn custom_types() {
        let cfg = SyntheticConfig {
            seed: 1,
            events: 50,
            partitions: 2,
            type_mix: vec![("A".into(), 1), ("B".into(), 1)],
            max_ts_step: 3,
            areas: 2,
        };
        let reg = registry_for(&cfg);
        let events = generate(&reg, &cfg);
        assert!(events
            .iter()
            .all(|e| e.type_name() == "A" || e.type_name() == "B"));
    }
}
