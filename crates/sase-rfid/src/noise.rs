//! The reader noise model.
//!
//! §3 motivates the cleaning layer: "RFID readings are known to be
//! inaccurate and lossy." The simulator reproduces the three error classes
//! the cleaning stack exists to fix:
//!
//! * **false negatives** — a tag in range is missed (`read_prob < 1`),
//!   repaired by temporal smoothing;
//! * **spurious readings** — ghost codes and truncated captures
//!   (`ghost_prob`, `truncate_prob`), removed by anomaly filtering;
//! * **duplicates** — overlapping read ranges deliver the same tag to two
//!   readers (`overlap_prob`), removed by deduplication.

/// Probabilities of the error classes, per tag-in-range per scan cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Probability a tag in range produces a reading.
    pub read_prob: f64,
    /// Probability a reader emits a ghost (implausible code) reading in a
    /// cycle.
    pub ghost_prob: f64,
    /// Probability a successful capture is truncated.
    pub truncate_prob: f64,
    /// Probability a tag is *also* captured by an adjacent reader.
    pub overlap_prob: f64,
}

impl NoiseModel {
    /// Ideal devices: every read succeeds, nothing spurious.
    pub fn perfect() -> Self {
        NoiseModel {
            read_prob: 1.0,
            ghost_prob: 0.0,
            truncate_prob: 0.0,
            overlap_prob: 0.0,
        }
    }

    /// Moderately lossy devices, typical of the EPC Gen1 era the paper's
    /// demo hardware belongs to.
    pub fn realistic() -> Self {
        NoiseModel {
            read_prob: 0.85,
            ghost_prob: 0.02,
            truncate_prob: 0.03,
            overlap_prob: 0.05,
        }
    }

    /// Heavily degraded devices, for stress-testing the cleaning stack.
    pub fn harsh() -> Self {
        NoiseModel {
            read_prob: 0.6,
            ghost_prob: 0.10,
            truncate_prob: 0.10,
            overlap_prob: 0.15,
        }
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::realistic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_quality() {
        let p = NoiseModel::perfect();
        let r = NoiseModel::realistic();
        let h = NoiseModel::harsh();
        assert!(p.read_prob > r.read_prob && r.read_prob > h.read_prob);
        assert!(p.ghost_prob < r.ghost_prob && r.ghost_prob < h.ghost_prob);
        assert_eq!(NoiseModel::default(), r);
    }
}
