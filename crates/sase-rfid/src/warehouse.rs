//! Warehouse / supply-chain workload generator (§4's track-and-trace data).
//!
//! "We pre-populate our Event Database with RFID data that simulates
//! typical warehouse and retail store workloads, such as loading/unloading
//! items, stocking shelves, and changing containments (e.g., moving items
//! from one box to another). This data represents some interesting movement
//! history for our retail-store items throughout a simulated supply chain
//! management system."
//!
//! The generator produces a [`WarehouseTrace`]: a timestamped movement
//! history per item plus containment-change operations, which
//! `sase-system` archives into the event database before the
//! track-and-trace queries run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Well-known warehouse/retail area ids used by the trace.
pub mod areas {
    /// Truck loading dock.
    pub const LOADING_DOCK: i64 = 100;
    /// Unloading / receiving zone.
    pub const UNLOADING_ZONE: i64 = 101;
    /// Warehouse backroom.
    pub const BACKROOM: i64 = 102;
    /// Retail shelf 1.
    pub const SHELF_1: i64 = 1;
    /// Retail shelf 2.
    pub const SHELF_2: i64 = 2;
}

/// One observed item movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Movement {
    /// Item id.
    pub item: i64,
    /// Area the item arrived in.
    pub area: i64,
    /// Logical arrival time.
    pub ts: u64,
}

/// A containment change: an item entering or leaving a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainmentChange {
    /// Item id.
    pub item: i64,
    /// Container id (a box/pallet, itself tagged).
    pub container: i64,
    /// Logical time of the change.
    pub ts: u64,
    /// True = item put into the container; false = taken out.
    pub added: bool,
}

/// A generated supply-chain history.
#[derive(Debug, Clone, Default)]
pub struct WarehouseTrace {
    /// Item movements, timestamp-sorted.
    pub movements: Vec<Movement>,
    /// Containment changes, timestamp-sorted.
    pub containments: Vec<ContainmentChange>,
    /// All item ids.
    pub items: Vec<i64>,
    /// All container ids.
    pub containers: Vec<i64>,
}

/// Generate a trace: each item is loaded in a container, trucked in,
/// unloaded (possibly re-boxed), stored in the backroom, and stocked onto a
/// shelf; a random subset is later moved between shelves.
pub fn generate(seed: u64, n_items: usize, n_containers: usize) -> WarehouseTrace {
    assert!(n_containers > 0, "need at least one container");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = WarehouseTrace {
        items: (1..=n_items as i64).collect(),
        containers: (1000..1000 + n_containers as i64).collect(),
        ..WarehouseTrace::default()
    };

    let mut ts: u64 = 1;
    let bump = |rng: &mut StdRng, ts: &mut u64| {
        *ts += rng.gen_range(1..5u64);
        *ts
    };

    for &item in &trace.items {
        let c0 = trace.containers[rng.gen_range(0..trace.containers.len())];
        // Packed into a container at the supplier, seen at the loading dock.
        let t = bump(&mut rng, &mut ts);
        trace.containments.push(ContainmentChange {
            item,
            container: c0,
            ts: t,
            added: true,
        });
        trace.movements.push(Movement {
            item,
            area: areas::LOADING_DOCK,
            ts: bump(&mut rng, &mut ts),
        });
        // Unloaded at the store.
        trace.movements.push(Movement {
            item,
            area: areas::UNLOADING_ZONE,
            ts: bump(&mut rng, &mut ts),
        });
        // Sometimes re-boxed during unloading (containment change).
        if rng.gen_bool(0.3) {
            let c1 = trace.containers[rng.gen_range(0..trace.containers.len())];
            if c1 != c0 {
                let t = bump(&mut rng, &mut ts);
                trace.containments.push(ContainmentChange {
                    item,
                    container: c0,
                    ts: t,
                    added: false,
                });
                trace.containments.push(ContainmentChange {
                    item,
                    container: c1,
                    ts: t,
                    added: true,
                });
            }
        }
        // Backroom, then stocked on a shelf (out of its box).
        trace.movements.push(Movement {
            item,
            area: areas::BACKROOM,
            ts: bump(&mut rng, &mut ts),
        });
        let active_container = trace
            .containments
            .iter()
            .rev()
            .find(|c| c.item == item && c.added)
            .map(|c| c.container)
            .expect("item was packed");
        let t = bump(&mut rng, &mut ts);
        trace.containments.push(ContainmentChange {
            item,
            container: active_container,
            ts: t,
            added: false,
        });
        let shelf = if rng.gen_bool(0.5) {
            areas::SHELF_1
        } else {
            areas::SHELF_2
        };
        trace.movements.push(Movement {
            item,
            area: shelf,
            ts: bump(&mut rng, &mut ts),
        });
        // A fraction gets re-shelved later.
        if rng.gen_bool(0.25) {
            let other = if shelf == areas::SHELF_1 {
                areas::SHELF_2
            } else {
                areas::SHELF_1
            };
            trace.movements.push(Movement {
                item,
                area: other,
                ts: bump(&mut rng, &mut ts),
            });
        }
    }

    trace.movements.sort_by_key(|m| m.ts);
    trace.containments.sort_by_key(|c| c.ts);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_item_reaches_a_shelf() {
        let t = generate(9, 20, 3);
        for &item in &t.items {
            let last = t.movements.iter().rfind(|m| m.item == item).unwrap();
            assert!(
                last.area == areas::SHELF_1 || last.area == areas::SHELF_2,
                "item {item} ended in area {}",
                last.area
            );
        }
    }

    #[test]
    fn movement_path_is_plausible() {
        let t = generate(9, 10, 2);
        for &item in &t.items {
            let path: Vec<i64> = t
                .movements
                .iter()
                .filter(|m| m.item == item)
                .map(|m| m.area)
                .collect();
            assert_eq!(path[0], areas::LOADING_DOCK);
            assert_eq!(path[1], areas::UNLOADING_ZONE);
            assert_eq!(path[2], areas::BACKROOM);
            assert!(path.len() >= 4);
        }
    }

    #[test]
    fn containment_balances() {
        let t = generate(3, 30, 4);
        for &item in &t.items {
            let mut open: Vec<i64> = Vec::new();
            for c in t.containments.iter().filter(|c| c.item == item) {
                if c.added {
                    open.push(c.container);
                } else {
                    let pos = open.iter().position(|x| *x == c.container);
                    assert!(pos.is_some(), "removing item from a box it is not in");
                    open.remove(pos.unwrap());
                }
            }
            assert!(
                open.is_empty(),
                "item {item} still boxed after stocking: {open:?}"
            );
        }
    }

    #[test]
    fn timestamps_sorted_and_deterministic() {
        let a = generate(5, 15, 2);
        let b = generate(5, 15, 2);
        assert_eq!(a.movements, b.movements);
        assert_eq!(a.containments, b.containments);
        assert!(a.movements.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(a.containments.windows(2).all(|w| w[0].ts <= w[1].ts));
    }
}
