//! The lock-free metrics registry: counters, gauges, and log-bucketed
//! latency histograms.
//!
//! Design rule: **all name lookup happens at registration time**. A
//! [`Counter`]/[`Gauge`]/[`Histogram`] handle is an `Arc` straight to the
//! atomic cells, so recording is wait-free (one or a few relaxed
//! atomic RMWs), never allocates, and never touches the registry's
//! registration lock. Registration itself (rare, control-plane) takes a
//! mutex and deduplicates on `(kind, name, labels)`, so re-registering
//! the same series — e.g. on engine restore — returns a handle to the
//! same cells.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two latency buckets. Bucket `i` counts values `v`
/// with `bucket_index(v) == i`; the last bucket absorbs everything from
/// `2^62` up (≈ 146 years in nanoseconds — effectively +Inf).
pub(crate) const BUCKETS: usize = 64;

/// Bucket index of a recorded value: 0 for 0, otherwise
/// `bit_length(v)` clamped to the last bucket, so bucket `i ≥ 1` spans
/// `[2^(i-1), 2^i)`.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`le` in Prometheus terms).
#[inline]
fn bucket_le(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not attached to any registry (all updates are kept but
    /// only visible through [`Counter::get`]). Useful as a default.
    pub fn detached() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A gauge: an instantaneous `f64` value (stored as bits in an
/// `AtomicU64`). Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge {
            cell: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (CAS loop; gauges are not hot-path cells).
    pub fn add(&self, delta: f64) {
        let mut cur = self.cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .cell
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram of non-negative integer samples (latencies
/// in nanoseconds, batch sizes, …): power-of-two buckets plus running
/// count / sum / max. Recording is four relaxed atomic RMWs; quantiles
/// (p50/p95/p99) are estimated at snapshot time by linear interpolation
/// inside the winning bucket. Cloning shares the cells.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram {
            core: Arc::new(HistogramCore::new()),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.core;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a wall-clock duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.core;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| c.buckets[i].load(Ordering::Relaxed)),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={:.0}, p99={:.0}, max={})",
            s.count,
            s.quantile(0.50),
            s.quantile(0.99),
            s.max
        )
    }
}

/// Frozen view of a [`Histogram`]: per-bucket counts plus count / sum /
/// max, with quantile estimation.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i ≥ 1` spans `[2^(i-1), 2^i)`).
    buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty distribution.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile `q ∈ [0, 1]`: finds the bucket holding the
    /// rank and interpolates linearly inside its `[2^(i-1), 2^i)` span,
    /// clamped to the observed max. Exact for p100/max; within one
    /// octave otherwise.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = bucket_le(i).min(self.max);
                let frac = (rank - seen) as f64 / n as f64;
                return (lo as f64 + frac * (hi.saturating_sub(lo)) as f64).min(self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Cumulative `(upper_bound, count ≤ upper_bound)` pairs for the
    /// non-empty prefix of buckets, as Prometheus `le` series.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            out.push((bucket_le(i), cum));
        }
        out
    }

    /// Merge another distribution into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HistogramSnapshot {{ count: {}, sum: {}, max: {}, p50: {:.0}, p95: {:.0}, p99: {:.0} }}",
            self.count,
            self.sum,
            self.max,
            self.p50(),
            self.p95(),
            self.p99()
        )
    }
}

/// The value of one metric series in a snapshot.
// Snapshot values live on the scrape path, one per series; boxing the
// histogram variant would buy nothing on the hot path and cost an
// indirection in every accessor.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Latency/size distribution.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn kind(&self) -> u8 {
        match self {
            MetricValue::Counter(_) => 0,
            MetricValue::Gauge(_) => 1,
            MetricValue::Histogram(_) => 2,
        }
    }
}

/// One metric series: name, sorted label pairs, and a typed value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Prometheus-style metric name (`sase_engine_batches_total`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: MetricValue,
}

impl MetricSample {
    fn identity(&self) -> (&str, &[(String, String)], u8) {
        (&self.name, &self.labels, self.value.kind())
    }
}

/// A typed, point-in-time view of one or more registries: the value the
/// `EventProcessor::metrics()` surface returns and the input to
/// [`render_prometheus`](crate::render_prometheus).
///
/// Samples are kept sorted by `(name, labels)` so merged multi-worker
/// snapshots are deterministic and diffable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All series, sorted by `(name, labels)`.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Sample lookup by name and labels (labels in any order).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let mut want: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        want.sort();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .map(|s| &s.value)
    }

    /// Counter value by name/labels, 0 when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by name/labels, 0.0 when absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.get(name, labels) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Histogram by name/labels, empty when absent.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramSnapshot {
        match self.get(name, labels) {
            Some(MetricValue::Histogram(h)) => h.clone(),
            _ => HistogramSnapshot::empty(),
        }
    }

    /// Sum of all counters with this name, across any labels.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Push one sample and restore the sort order.
    pub fn push(&mut self, name: impl Into<String>, labels: &[(&str, &str)], value: MetricValue) {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        self.samples.push(MetricSample {
            name: name.into(),
            labels,
            value,
        });
        self.sort();
    }

    /// Merge `other` into `self` **deterministically**: series with the
    /// same `(name, labels, kind)` identity combine — counters and
    /// histograms sum, gauges sum (per-worker gauges like queue depth
    /// are additive across shards) — and the result is re-sorted. This
    /// is how the sharded engine folds worker-local registries into one
    /// deployment view.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for s in &other.samples {
            match self
                .samples
                .iter_mut()
                .find(|have| have.identity() == s.identity())
            {
                Some(have) => match (&mut have.value, &s.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    _ => unreachable!("identity includes the kind"),
                },
                None => self.samples.push(s.clone()),
            }
        }
        self.sort();
    }

    /// Merge many snapshots into one (deterministic regardless of input
    /// order, since combination is commutative and output is sorted).
    pub fn merged(parts: impl IntoIterator<Item = MetricsSnapshot>) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for p in parts {
            out.merge(&p);
        }
        out
    }

    fn sort(&mut self) {
        self.samples
            .sort_by(|a, b| (a.identity()).cmp(&b.identity()));
    }
}

enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Cell {
    fn kind(&self) -> u8 {
        match self {
            Cell::Counter(_) => 0,
            Cell::Gauge(_) => 1,
            Cell::Histogram(_) => 2,
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

/// A registry of metric series. Cloning shares the underlying store, so
/// one registry can be handed to several components (engine, WAL,
/// router) which each resolve their own handles at build time.
///
/// Registration is control-plane (mutex + linear scan, deduplicating on
/// `(kind, name, labels)`); recording through the returned handles never
/// touches the registry again.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn canonical(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = labels
            .iter()
            .map(|(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        v
    }

    fn resolve(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: u8,
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        let labels = Self::canonical(labels);
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.cell.kind() == kind && e.name == name && e.labels == labels)
        {
            return match &e.cell {
                Cell::Counter(c) => Cell::Counter(c.clone()),
                Cell::Gauge(g) => Cell::Gauge(g.clone()),
                Cell::Histogram(h) => Cell::Histogram(h.clone()),
            };
        }
        let cell = make();
        let handle = match &cell {
            Cell::Counter(c) => Cell::Counter(c.clone()),
            Cell::Gauge(g) => Cell::Gauge(g.clone()),
            Cell::Histogram(h) => Cell::Histogram(h.clone()),
        };
        entries.push(Entry {
            name: name.to_string(),
            labels,
            cell,
        });
        handle
    }

    /// Register (or re-resolve) a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.resolve(name, labels, 0, || Cell::Counter(Counter::detached())) {
            Cell::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or re-resolve) a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.resolve(name, labels, 1, || Cell::Gauge(Gauge::detached())) {
            Cell::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or re-resolve) a histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.resolve(name, labels, 2, || Cell::Histogram(Histogram::detached())) {
            Cell::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Freeze every registered series into a sorted [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut snap = MetricsSnapshot {
            samples: entries
                .iter()
                .map(|e| MetricSample {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    value: match &e.cell {
                        Cell::Counter(c) => MetricValue::Counter(c.get()),
                        Cell::Gauge(g) => MetricValue::Gauge(g.get()),
                        Cell::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        };
        snap.sort();
        snap
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        write!(f, "MetricsRegistry({n} series)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_deduplicated() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits", &[("shard", "0")]);
        let b = reg.counter("hits", &[("shard", "0")]);
        let other = reg.counter("hits", &[("shard", "1")]);
        a.add(3);
        b.inc();
        other.inc();
        assert_eq!(a.get(), 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits", &[("shard", "0")]), 4);
        assert_eq!(snap.counter("hits", &[("shard", "1")]), 1);
        assert_eq!(snap.counter_sum("hits"), 5);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("c", &[("a", "1"), ("b", "2")]);
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("c", &[("b", "2"), ("a", "1")]), 2);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = MetricsRegistry::new().gauge("depth", &[]);
        g.set(4.0);
        g.add(-1.5);
        assert!((g.get() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // Log-bucketed estimates are within one octave of the truth.
        let p50 = s.p50();
        assert!((256.0..=1000.0).contains(&p50), "p50 = {p50}");
        assert!(s.p95() <= 1000.0 && s.p95() >= s.p50());
        assert!(s.p99() <= 1000.0 && s.p99() >= s.p95());
        assert_eq!(s.quantile(1.0), 1000.0);
        // Cumulative buckets end at the total count.
        assert_eq!(s.cumulative_buckets().last().unwrap().1, 1000);
    }

    #[test]
    fn histogram_zero_and_max_samples() {
        let h = Histogram::detached();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(0.0), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_histograms_deterministically() {
        let mk = |n: u64| {
            let reg = MetricsRegistry::new();
            reg.counter("events", &[]).add(n);
            let h = reg.histogram("lat", &[]);
            h.record(n);
            reg.gauge("depth", &[]).set(n as f64);
            reg.snapshot()
        };
        let ab = MetricsSnapshot::merged([mk(2), mk(40)]);
        let ba = MetricsSnapshot::merged([mk(40), mk(2)]);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("events", &[]), 42);
        assert_eq!(ab.histogram("lat", &[]).count, 2);
        assert_eq!(ab.histogram("lat", &[]).max, 40);
        assert!((ab.gauge("depth", &[]) - 42.0).abs() < 1e-9);
    }
}
