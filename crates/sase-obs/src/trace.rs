//! Sampled lifecycle tracing.
//!
//! A [`Tracer`] wraps an optional [`TraceSink`] and a sampling rate.
//! Instrumented seams call [`Tracer::begin`] at the start of a unit of
//! work and [`Tracer::end`] with the returned span token; the sink
//! receives paired [`TraceEvent`]s with monotonic timestamps and the
//! caller-supplied provenance id (batch sequence number, WAL record
//! seq, shard index, …).
//!
//! Cost model: with no sink installed, `begin` is **one branch** (the
//! `Option` check) and returns `None`, so `end` is never reached. With
//! a sink, the sampling decision is one relaxed `fetch_add` per unit of
//! work; only sampled spans pay for timestamps and the sink call.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Monotonic nanoseconds since the first observability call in this
/// process. All [`TraceEvent`] timestamps share this clock, so begin/end
/// pairs and cross-component orderings are directly comparable.
pub fn now_nanos() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The lifecycle stage a trace event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// One `process_batch` call on an engine (id = engine-local batch
    /// sequence number; `n` = events in / emissions out).
    BatchIngest,
    /// One event offered to one query runtime (id = query index in
    /// registration order; `n` = emissions so far / produced).
    QueryEval,
    /// One WAL commit — flush + fsync (id = last appended record seq).
    WalCommit,
    /// One checkpoint write (id = checkpoint tick).
    Checkpoint,
    /// One sharded dispatch round (id = router batch sequence number;
    /// `n` = events routed).
    ShardDispatch,
    /// WAL replay during recovery (id = records replayed so far).
    Recovery,
}

impl TraceKind {
    /// Stable lowercase name (used by sinks that render text).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::BatchIngest => "batch_ingest",
            TraceKind::QueryEval => "query_eval",
            TraceKind::WalCommit => "wal_commit",
            TraceKind::Checkpoint => "checkpoint",
            TraceKind::ShardDispatch => "shard_dispatch",
            TraceKind::Recovery => "recovery",
        }
    }
}

/// Begin or end of a unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Work started.
    Begin,
    /// Work finished.
    End,
}

/// One typed lifecycle event delivered to a [`TraceSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What kind of work.
    pub kind: TraceKind,
    /// Begin or end of that work.
    pub phase: TracePhase,
    /// Provenance id — what *instance* of the work (see [`TraceKind`]
    /// for each kind's id semantics). Begin/end pairs share the id.
    pub id: u64,
    /// Kind-specific magnitude (events in a batch, emissions produced,
    /// bytes appended, …).
    pub n: u64,
    /// Monotonic timestamp from [`now_nanos`].
    pub at_ns: u64,
}

/// Receiver of sampled lifecycle events. Sinks are shared across
/// engine worker threads, so implementations must be `Send + Sync`;
/// events for one unit of work arrive on the thread doing that work.
pub trait TraceSink: Send + Sync {
    /// Observe one event. Called inline on the instrumented path — keep
    /// it cheap or hand off.
    fn event(&self, ev: TraceEvent);
}

/// A sampled span in flight: token returned by [`Tracer::begin`],
/// consumed by [`Tracer::end`]. `Copy` and allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct TraceSpan {
    kind: TraceKind,
    id: u64,
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    /// Emit 1 of every `sample_every` units of work (1 = all).
    sample_every: u64,
    /// Unit-of-work counter driving the sampling decision.
    ticket: AtomicU64,
}

/// A cloneable handle wiring instrumented seams to an optional
/// [`TraceSink`]. The default ([`Tracer::disabled`]) has no sink and
/// costs one branch per potential span.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that samples nothing (the default).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer delivering 1 of every `sample_every` units of work to
    /// `sink` (`sample_every` is clamped to ≥ 1).
    pub fn sampled(sink: Arc<dyn TraceSink>, sample_every: u64) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink,
                sample_every: sample_every.max(1),
                ticket: AtomicU64::new(0),
            })),
        }
    }

    /// Is any sink installed?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a unit of work. Returns `Some(span)` only when this unit
    /// is sampled; pass the span to [`Tracer::end`] when the work
    /// finishes. Disabled tracers return `None` after a single branch.
    #[inline]
    pub fn begin(&self, kind: TraceKind, id: u64, n: u64) -> Option<TraceSpan> {
        let inner = self.inner.as_ref()?;
        if inner.ticket.fetch_add(1, Ordering::Relaxed) % inner.sample_every != 0 {
            return None;
        }
        inner.sink.event(TraceEvent {
            kind,
            phase: TracePhase::Begin,
            id,
            n,
            at_ns: now_nanos(),
        });
        Some(TraceSpan { kind, id })
    }

    /// Finish a sampled unit of work (`n` = result magnitude, e.g.
    /// emissions produced).
    #[inline]
    pub fn end(&self, span: TraceSpan, n: u64) {
        if let Some(inner) = self.inner.as_ref() {
            inner.sink.event(TraceEvent {
                kind: span.kind,
                phase: TracePhase::End,
                id: span.id,
                n,
                at_ns: now_nanos(),
            });
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "Tracer(1/{} sampled)", i.sample_every),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

/// A [`TraceSink`] that buffers events in memory — for tests and the
/// repl's `watch` view.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Drain everything observed so far.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock().expect("trace sink poisoned"))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// True when nothing has been observed (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn event(&self, ev: TraceEvent) {
        self.events.lock().expect("trace sink poisoned").push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_emits_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(t.begin(TraceKind::BatchIngest, 0, 10).is_none());
    }

    #[test]
    fn sampling_keeps_one_in_n_with_paired_begin_end() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::sampled(sink.clone(), 4);
        for i in 0..16u64 {
            if let Some(span) = t.begin(TraceKind::BatchIngest, i, 100) {
                t.end(span, 1);
            }
        }
        let evs = sink.drain();
        // 16 units at 1-in-4 → 4 sampled units, each a begin/end pair.
        assert_eq!(evs.len(), 8);
        for pair in evs.chunks(2) {
            assert_eq!(pair[0].phase, TracePhase::Begin);
            assert_eq!(pair[1].phase, TracePhase::End);
            assert_eq!(pair[0].id, pair[1].id);
            assert!(pair[0].at_ns <= pair[1].at_ns, "monotonic timestamps");
        }
    }

    #[test]
    fn sample_every_one_traces_everything() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::sampled(sink.clone(), 1);
        for i in 0..3u64 {
            let span = t.begin(TraceKind::WalCommit, i, 0).expect("all sampled");
            t.end(span, 0);
        }
        assert_eq!(sink.len(), 6);
    }
}
