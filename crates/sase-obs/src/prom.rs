//! Prometheus text exposition format (version 0.0.4) rendering.

use std::fmt::Write as _;

use crate::metrics::{MetricSample, MetricValue, MetricsSnapshot};

/// Render a snapshot in the Prometheus text exposition format: one
/// `# TYPE` line per metric family followed by its series. Histograms
/// render the conventional `_bucket{le=…}` / `_sum` / `_count` triple
/// (cumulative buckets at the registry's power-of-two bounds) plus
/// `_max` as an auxiliary gauge.
///
/// Series arrive sorted by `(name, labels)` from
/// [`MetricsSnapshot`], so families are contiguous and the output is
/// deterministic.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<(&str, u8)> = None;
    for s in &snap.samples {
        let kind = match &s.value {
            MetricValue::Counter(_) => 0,
            MetricValue::Gauge(_) => 1,
            MetricValue::Histogram(_) => 2,
        };
        if last_family != Some((s.name.as_str(), kind)) {
            let type_name = ["counter", "gauge", "histogram"][kind as usize];
            let _ = writeln!(out, "# TYPE {} {}", s.name, type_name);
            last_family = Some((s.name.as_str(), kind));
        }
        render_sample(&mut out, s);
    }
    out
}

fn render_sample(out: &mut String, s: &MetricSample) {
    match &s.value {
        MetricValue::Counter(v) => {
            let _ = writeln!(out, "{}{} {}", s.name, labelset(&s.labels, &[]), v);
        }
        MetricValue::Gauge(v) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                s.name,
                labelset(&s.labels, &[]),
                fmt_f64(*v)
            );
        }
        MetricValue::Histogram(h) => {
            for (le, cum) in h.cumulative_buckets() {
                if le == u64::MAX {
                    // Covered by the explicit +Inf line below.
                    continue;
                }
                let le = le.to_string();
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    s.name,
                    labelset(&s.labels, &[("le", &le)]),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                s.name,
                labelset(&s.labels, &[("le", "+Inf")]),
                h.count
            );
            let _ = writeln!(out, "{}_sum{} {}", s.name, labelset(&s.labels, &[]), h.sum);
            let _ = writeln!(
                out,
                "{}_count{} {}",
                s.name,
                labelset(&s.labels, &[]),
                h.count
            );
            let _ = writeln!(out, "{}_max{} {}", s.name, labelset(&s.labels, &[]), h.max);
        }
    }
}

/// Format a label set `{k="v",…}` (empty string when no labels), with
/// `extra` pairs appended (used for `le`). Values are escaped per the
/// exposition format (`\\`, `\"`, `\n`).
fn labelset(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{k}=\"{}\"", escape(v));
    }
    s.push('}');
    s
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    /// A strict checker for the subset of the exposition format we emit:
    /// every line is either `# TYPE <name> <kind>` or
    /// `name[{k="v",…}] <number>`, TYPE lines precede their family's
    /// samples, and histogram families carry `_sum`/`_count`.
    fn assert_valid_exposition(text: &str) {
        let name_ok = |n: &str| {
            !n.is_empty()
                && n.chars().next().unwrap().is_ascii_alphabetic()
                && n.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        let mut typed: Vec<(String, String)> = Vec::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().expect("TYPE name");
                let kind = it.next().expect("TYPE kind");
                assert!(it.next().is_none(), "trailing TYPE tokens: {line}");
                assert!(name_ok(name), "bad metric name {name:?}");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad kind {kind:?}"
                );
                typed.push((name.to_string(), kind.to_string()));
                continue;
            }
            assert!(!line.starts_with('#'), "unexpected comment: {line}");
            // Sample line: name[{labels}] value
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                value == "+Inf"
                    || value == "-Inf"
                    || value == "NaN"
                    || value.parse::<f64>().is_ok(),
                "bad sample value {value:?} in {line:?}"
            );
            let (name, labels) = match series.find('{') {
                Some(i) => {
                    assert!(series.ends_with('}'), "unterminated labels: {line}");
                    (&series[..i], &series[i + 1..series.len() - 1])
                }
                None => (series, ""),
            };
            assert!(name_ok(name), "bad series name {name:?}");
            if !labels.is_empty() {
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').expect("label pair");
                    assert!(name_ok(k), "bad label key {k:?}");
                    assert!(
                        v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                        "unquoted label value {v:?}"
                    );
                }
            }
            // The family must have been typed, allowing histogram suffixes.
            let family_of = |n: &str| {
                for suf in ["_bucket", "_sum", "_count", "_max"] {
                    if let Some(stem) = n.strip_suffix(suf) {
                        if typed.iter().any(|(t, k)| t == stem && k == "histogram") {
                            return stem.to_string();
                        }
                    }
                }
                n.to_string()
            };
            let fam = family_of(name);
            assert!(
                typed.iter().any(|(t, _)| *t == fam),
                "sample before TYPE line: {line}"
            );
        }
    }

    #[test]
    fn rendered_output_is_valid_exposition_text() {
        let reg = MetricsRegistry::new();
        reg.counter("sase_events_ingested_total", &[]).add(1234);
        reg.counter("sase_shard_events_routed_total", &[("shard", "0")])
            .add(7);
        reg.counter("sase_shard_events_routed_total", &[("shard", "1")])
            .add(8);
        reg.gauge("sase_shard_queue_depth", &[("shard", "0")])
            .set(3.0);
        reg.gauge("sase_imbalance_ratio", &[]).set(1.25);
        let h = reg.histogram("sase_batch_latency_ns", &[]);
        for v in [0u64, 1, 90, 1_000, 65_000, 2_000_000] {
            h.record(v);
        }
        let text = render_prometheus(&reg.snapshot());
        assert_valid_exposition(&text);
        assert!(text.contains("# TYPE sase_events_ingested_total counter"));
        assert!(text.contains("sase_events_ingested_total 1234"));
        assert!(text.contains("sase_shard_events_routed_total{shard=\"0\"} 7"));
        assert!(text.contains("# TYPE sase_batch_latency_ns histogram"));
        assert!(text.contains("sase_batch_latency_ns_bucket{le=\"+Inf\"} 6"));
        assert!(text.contains("sase_batch_latency_ns_count 6"));
        assert!(text.contains("sase_imbalance_ratio 1.25"));
        // One TYPE line per family, not per series.
        assert_eq!(
            text.matches("# TYPE sase_shard_events_routed_total")
                .count(),
            1
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("q", "a\"b\\c\nd")]).inc();
        let text = render_prometheus(&reg.snapshot());
        assert_valid_exposition(&text);
        assert!(text.contains("c{q=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
