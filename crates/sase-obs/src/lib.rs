//! Observability spine for the SASE reproduction.
//!
//! The engine family (single `Engine`, sharded, durable, and the `Sase`
//! facade) shares one instrumentation vocabulary, defined here so every
//! crate in the workspace can speak it without depending on each other:
//!
//! * [`MetricsRegistry`] — a lock-free registry of named
//!   [`Counter`]s, [`Gauge`]s, and log-bucketed [`Histogram`]s. Handles
//!   are resolved **once**, at registration/build time; after that every
//!   hot-path update is a single relaxed atomic read-modify-write —
//!   wait-free and allocation-free (proven by the workspace
//!   `zero_alloc` test).
//! * [`MetricsSnapshot`] — a typed, point-in-time view of a registry
//!   (or several registries merged deterministically, as the sharded
//!   engine does with its worker-local registries).
//! * [`render_prometheus`] — the Prometheus text exposition renderer.
//! * [`Tracer`] / [`TraceSink`] — opt-in, sampled lifecycle tracing
//!   with monotonic timestamps and provenance ids. When no sink is
//!   installed the per-span cost is a single branch.
//!
//! The crate is dependency-free and knows nothing about events or
//! queries: the engine crates own *what* to measure, this crate owns
//! *how* measurement stays off the hot path.
//!
//! ```
//! use sase_obs::{MetricsRegistry, render_prometheus};
//!
//! let reg = MetricsRegistry::new();
//! // Resolve handles once, at build time …
//! let batches = reg.counter("sase_engine_batches_total", &[]);
//! let lat = reg.histogram("sase_engine_batch_latency_ns", &[]);
//! // … then the hot path is pure atomics.
//! batches.inc();
//! lat.record(1_500);
//! let snap = reg.snapshot();
//! assert!(render_prometheus(&snap).contains("sase_engine_batches_total 1"));
//! ```

#![forbid(unsafe_code)]

mod metrics;
mod prom;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSample, MetricValue, MetricsRegistry,
    MetricsSnapshot,
};
pub use prom::render_prometheus;
pub use trace::{now_nanos, MemorySink, TraceEvent, TraceKind, TracePhase, TraceSink, Tracer};
