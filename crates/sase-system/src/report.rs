//! Textual rendering of the SASE UI (Figure 3).
//!
//! The paper's UI shows five windows: "Present Queries", "Message Results",
//! "Cleaning and Association Layer Output", "Database Report", and "Stream
//! Processor Output". [`UiReport`] captures the same taps as structured
//! text so the demo runs headless.

use std::fmt::Write as _;

use sase_core::output::ComplexEvent;

use crate::system::SaseSystem;

/// A snapshot of the five UI windows.
#[derive(Debug, Clone, Default)]
pub struct UiReport {
    /// "Present Queries": name and canonical text of each registered query.
    pub present_queries: Vec<(String, String)>,
    /// "Message Results": one user-facing message per detection.
    pub message_results: Vec<String>,
    /// "Cleaning and Association Layer Output": recent cleaned events.
    pub cleaning_output: Vec<String>,
    /// "Database Report": database work triggered by stream queries.
    pub database_report: Vec<String>,
    /// "Stream Processor Output": the raw values computed by the stream
    /// side of each query, before the database join.
    pub stream_output: Vec<String>,
}

impl UiReport {
    /// Capture a snapshot of a running system.
    pub fn capture(system: &SaseSystem, engine_query_names: &[String]) -> UiReport {
        let mut report = UiReport::default();
        for name in engine_query_names {
            // The system's engine owns the texts; capture is best-effort.
            report.present_queries.push((name.clone(), String::new()));
        }
        for e in system.cleaning_tap() {
            report.cleaning_output.push(e.to_string());
        }
        for d in system.detections() {
            report.add_detection(d);
        }
        report
    }

    /// Record one detection across the windows it touches.
    pub fn add_detection(&mut self, d: &ComplexEvent) {
        // Stream Processor Output: scalar values except DB-function joins.
        let mut stream_vals = Vec::new();
        let mut db_vals = Vec::new();
        for (name, value) in &d.values {
            if name.starts_with('_') {
                db_vals.push(format!("{name} -> {value}"));
            } else {
                stream_vals.push(format!("{name}={value}"));
            }
        }
        self.stream_output.push(format!(
            "[{}@{}] {}",
            d.query,
            d.detected_at,
            stream_vals.join(", ")
        ));
        for v in &db_vals {
            self.database_report.push(format!("[{}] {v}", d.query));
        }
        // Message Results: the fully-joined user message.
        let mut msg = format!("{} detected at t={}", d.query, d.detected_at);
        if !d.values.is_empty() {
            let all: Vec<String> = d.values.iter().map(|(n, v)| format!("{n}: {v}")).collect();
            msg.push_str(&format!(" — {}", all.join(", ")));
        }
        self.message_results.push(msg);
    }

    /// Render all five windows as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let window = |out: &mut String, title: &str, lines: &[String]| {
            let _ = writeln!(out, "==== {title} ====");
            if lines.is_empty() {
                let _ = writeln!(out, "(empty)");
            }
            for l in lines {
                let _ = writeln!(out, "{l}");
            }
            let _ = writeln!(out);
        };
        let queries: Vec<String> = self
            .present_queries
            .iter()
            .map(|(n, t)| {
                if t.is_empty() {
                    n.clone()
                } else {
                    format!("{n}:\n{t}")
                }
            })
            .collect();
        window(&mut out, "Present Queries", &queries);
        window(&mut out, "Message Results", &self.message_results);
        window(
            &mut out,
            "Cleaning and Association Layer Output",
            &self.cleaning_output,
        );
        window(&mut out, "Database Report", &self.database_report);
        window(&mut out, "Stream Processor Output", &self.stream_output);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sase_core::value::Value;
    use std::sync::Arc;

    fn detection() -> ComplexEvent {
        ComplexEvent {
            query: Arc::from("shoplifting"),
            variables: vec![],
            events: vec![],
            values: vec![
                (Arc::from("x.TagId"), Value::Int(7)),
                (Arc::from("x.ProductName"), Value::str("soap")),
                (
                    Arc::from("_retrieveLocation(z.AreaId)"),
                    Value::str("the leftmost door on the south side of the store"),
                ),
            ],
            detected_at: 42,
            into: None,
        }
    }

    #[test]
    fn detection_routed_to_windows() {
        let mut r = UiReport::default();
        r.add_detection(&detection());
        assert_eq!(r.message_results.len(), 1);
        assert!(r.message_results[0].contains("shoplifting detected at t=42"));
        assert!(r.message_results[0].contains("soap"));
        assert_eq!(r.stream_output.len(), 1);
        assert!(r.stream_output[0].contains("x.TagId=7"));
        assert!(!r.stream_output[0].contains("door"));
        assert_eq!(r.database_report.len(), 1);
        assert!(r.database_report[0].contains("door"));
    }

    #[test]
    fn render_contains_all_window_titles() {
        let mut r = UiReport::default();
        r.present_queries
            .push(("shoplifting".into(), "EVENT ...".into()));
        r.add_detection(&detection());
        let text = r.render();
        for title in [
            "Present Queries",
            "Message Results",
            "Cleaning and Association Layer Output",
            "Database Report",
            "Stream Processor Output",
        ] {
            assert!(text.contains(title), "missing window {title}");
        }
        assert!(text.contains("(empty)")); // cleaning window has no entries
    }
}
