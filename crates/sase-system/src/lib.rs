//! # sase-system — the complete SASE system
//!
//! Wires every layer of Figure 1 together: the simulated RFID devices
//! (`sase-rfid`), the Cleaning and Association Layer (`sase-stream`), the
//! complex event processor (`sase-core`), and the event database
//! (`sase-db`), plus the paper's built-in database functions
//! (`_retrieveLocation`, `_updateLocation`, containment updates) and a
//! textual rendering of the Figure 3 UI.
//!
//! ```
//! use sase_rfid::noise::NoiseModel;
//! use sase_rfid::scenario::RetailScenario;
//! use sase_system::SaseSystem;
//!
//! let mut sys = SaseSystem::retail(NoiseModel::perfect(), 7, 20).unwrap();
//! sys.register_demo_queries().unwrap();
//! let scenario = RetailScenario::build(sys.config(), 3, 2, 1, 0);
//! sys.run_scenario(&scenario).unwrap();
//! assert!(!sys.detections_for("shoplifting").is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builtins;
pub mod concurrent;
pub mod durable;
pub mod queries;
pub mod report;
pub mod system;

pub use builtins::{register_db_builtins, retail_area_descriptions, seed_area_info};
pub use concurrent::{
    run_pipelined, PipelinedRun, ShardedEngine, ShardedEngineBuilder, ShardingMode,
};
pub use durable::{
    DurableEngine, DurableError, DurableOptions, DurableSystem, RecoveryReport, ReplayRun,
};
pub use report::UiReport;
pub use sase_core::processor::EventProcessor;
pub use system::{SaseSystem, TickResult};
