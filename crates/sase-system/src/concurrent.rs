//! Threaded deployment: each Figure 1 layer on its own thread.
//!
//! In the paper's prototype the physical device layer, the Cleaning and
//! Association Layer, and the complex event processor are separate
//! components connected by sockets. This module reproduces that deployment
//! shape: a *device* thread streams wire-encoded reading frames
//! ([`sase_rfid::wire`]) into a channel, a *cleaning* thread decodes and
//! runs the five-layer pipeline, and an *engine* thread executes the
//! continuous queries — with crossbeam channels standing in for the
//! sockets.
//!
//! The single-threaded [`crate::SaseSystem`] is the reference; the
//! pipelined deployment produces byte-for-byte the same detections (the
//! stages are deterministic and order-preserving), which the tests assert.

use std::sync::Arc;
use std::thread;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};

use sase_core::engine::Engine;
use sase_core::error::{Result as CoreResult, SaseError};
use sase_core::event::{Event, SchemaRegistry};
use sase_core::output::ComplexEvent;

use sase_rfid::wire::{decode_frame, encode_frame};
use sase_stream::pipeline::CleaningPipeline;
use sase_stream::reading::RawReading;
use sase_stream::Tick;

/// Channel capacity between stages (frames / events in flight).
const STAGE_CAPACITY: usize = 64;

/// Outcome of a pipelined run.
#[derive(Debug)]
pub struct PipelinedRun {
    /// Every composite event, in emission order.
    pub detections: Vec<ComplexEvent>,
    /// Events that left the cleaning stage.
    pub events_generated: usize,
    /// Frames the device stage shipped.
    pub frames_shipped: usize,
}

/// Run a scripted reading source through cleaning and the engine, one
/// thread per stage.
///
/// `ticks` yields each scan cycle's readings in order (the device stage
/// encodes them to wire frames); `pipeline` and `engine` are consumed by
/// their stages. Errors from any stage abort the run.
pub fn run_pipelined<I>(
    ticks: I,
    mut pipeline: CleaningPipeline,
    mut engine: Engine,
) -> CoreResult<PipelinedRun>
where
    I: IntoIterator<Item = (Tick, Vec<RawReading>)> + Send + 'static,
    I::IntoIter: Send,
{
    let (frame_tx, frame_rx): (Sender<Bytes>, Receiver<Bytes>) = bounded(STAGE_CAPACITY);
    let (event_tx, event_rx): (Sender<Event>, Receiver<Event>) = bounded(STAGE_CAPACITY);

    // Stage 1: the device layer ships frames "over the socket".
    let device = thread::spawn(move || -> CoreResult<usize> {
        let mut shipped = 0usize;
        for (tick, readings) in ticks {
            let frame = encode_frame(tick, &readings)
                .map_err(|e| SaseError::engine(format!("wire encode: {e}")))?;
            if frame_tx.send(frame).is_err() {
                break; // downstream closed (error path)
            }
            shipped += 1;
        }
        Ok(shipped)
    });

    // Stage 2: cleaning and association.
    let cleaning = thread::spawn(move || -> CoreResult<usize> {
        let mut generated = 0usize;
        for frame in frame_rx {
            let (tick, readings) =
                decode_frame(frame).map_err(|e| SaseError::engine(format!("wire decode: {e}")))?;
            for event in pipeline.process_tick(tick, &readings)? {
                generated += 1;
                if event_tx.send(event).is_err() {
                    return Ok(generated); // downstream closed
                }
            }
        }
        Ok(generated)
    });

    // Stage 3: the complex event processor (this thread).
    let mut detections = Vec::new();
    for event in event_rx {
        detections.extend(engine.process(&event)?);
    }

    let frames_shipped = device
        .join()
        .map_err(|_| SaseError::engine("device stage panicked"))??;
    let events_generated = cleaning
        .join()
        .map_err(|_| SaseError::engine("cleaning stage panicked"))??;

    Ok(PipelinedRun {
        detections,
        events_generated,
        frames_shipped,
    })
}

/// Convenience: pre-render a simulator + scenario into the tick iterator
/// [`run_pipelined`] consumes.
pub fn scripted_ticks(
    mut sim: sase_rfid::sim::RfidSimulator,
    scenario: &sase_rfid::scenario::RetailScenario,
) -> Vec<(Tick, Vec<RawReading>)> {
    let mut out = Vec::with_capacity(scenario.duration as usize);
    for tick in 0..scenario.duration {
        scenario.apply_tick(&mut sim, tick);
        out.push((tick, sim.tick()));
    }
    out
}

/// Build the cleaning pipeline and engine for the retail demo without the
/// rest of [`crate::SaseSystem`] (the pipelined deployment owns them).
pub fn retail_stages(
    catalog_size: usize,
) -> CoreResult<(SchemaRegistry, CleaningPipeline, Engine)> {
    use crate::builtins::{register_db_builtins, retail_area_descriptions, seed_area_info};
    use sase_core::functions::FunctionRegistry;
    use sase_db::Database;
    use sase_stream::{register_reading_schemas, CleaningConfig, StaticOns};

    let cfg = CleaningConfig::retail_demo();
    let registry = SchemaRegistry::new();
    register_reading_schemas(&registry)?;
    let db = Database::new();
    seed_area_info(&db, &retail_area_descriptions())
        .map_err(|e| SaseError::engine(e.to_string()))?;
    let functions = FunctionRegistry::with_stdlib();
    register_db_builtins(&functions, &db).map_err(|e| SaseError::engine(e.to_string()))?;
    let mut ons = StaticOns::new();
    for item in 1..=catalog_size as u64 {
        let (name, category, price) = crate::system::demo_product(item);
        ons.insert(cfg.make_tag(item), name, category, price);
    }
    let pipeline = CleaningPipeline::new(cfg, registry.clone(), Arc::new(ons));
    let engine = Engine::with_functions(registry.clone(), functions);
    Ok((registry, pipeline, engine))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;
    use sase_core::value::Value;
    use sase_rfid::noise::NoiseModel;
    use sase_rfid::scenario::RetailScenario;
    use sase_rfid::sim::RfidSimulator;
    use sase_stream::CleaningConfig;

    #[test]
    fn pipelined_matches_single_threaded() {
        let cfg = CleaningConfig::retail_demo();
        let scenario = RetailScenario::build(&cfg, 42, 4, 2, 1);

        // Single-threaded reference.
        let mut reference = crate::SaseSystem::retail(NoiseModel::realistic(), 9, 40).unwrap();
        reference.register_demo_queries().unwrap();
        reference.run_scenario(&scenario).unwrap();
        let expect: Vec<String> = reference
            .detections()
            .iter()
            .map(|d| d.to_string())
            .collect();

        // Pipelined deployment over the *same* device stream (same sim
        // seed and noise).
        let (_registry, pipeline, mut engine) = retail_stages(40).unwrap();
        engine
            .register("shoplifting", queries::SHOPLIFTING)
            .unwrap();
        engine
            .register("location_change", queries::LOCATION_CHANGE)
            .unwrap();
        engine
            .register("archive_location", queries::ARCHIVE_LOCATION)
            .unwrap();
        let sim = RfidSimulator::retail_demo(NoiseModel::realistic(), 9);
        let ticks = scripted_ticks(sim, &scenario);
        let run = run_pipelined(ticks, pipeline, engine).unwrap();

        let got: Vec<String> = run.detections.iter().map(|d| d.to_string()).collect();
        assert_eq!(expect, got, "pipelined deployment must agree exactly");
        assert!(run.frames_shipped as u64 >= scenario.duration);
        assert!(run.events_generated > 0);
    }

    #[test]
    fn pipelined_detects_planted_shoplifters() {
        let cfg = CleaningConfig::retail_demo();
        let scenario = RetailScenario::build(&cfg, 7, 3, 2, 0);
        let (_registry, pipeline, mut engine) = retail_stages(40).unwrap();
        engine
            .register("shoplifting", queries::SHOPLIFTING)
            .unwrap();
        let sim = RfidSimulator::retail_demo(NoiseModel::perfect(), 1);
        let run = run_pipelined(scripted_ticks(sim, &scenario), pipeline, engine).unwrap();
        let mut flagged: Vec<i64> = run
            .detections
            .iter()
            .filter_map(|d| d.value("x.TagId").and_then(Value::as_int))
            .collect();
        flagged.sort_unstable();
        flagged.dedup();
        assert_eq!(flagged, scenario.truth.shoplifted);
    }

    #[test]
    fn engine_error_propagates_across_threads() {
        let (_registry, pipeline, mut engine) = retail_stages(4).unwrap();
        engine.functions().register_fn("_boom", Some(1), |_| {
            Err(SaseError::Function {
                name: "_boom".into(),
                message: "injected".into(),
            })
        });
        engine
            .register("q", "EVENT SHELF_READING x RETURN _boom(x.TagId)")
            .unwrap();
        let cfg = CleaningConfig::retail_demo();
        let mut sim = RfidSimulator::retail_demo(NoiseModel::perfect(), 1);
        sim.place_tag(cfg.make_tag(1), 1);
        let ticks: Vec<(Tick, Vec<RawReading>)> = vec![(0, sim.tick())];
        let err = run_pipelined(ticks, pipeline, engine).unwrap_err();
        assert!(err.to_string().contains("injected"));
    }
}
