//! Threaded deployments: each Figure 1 layer on its own thread, and a
//! sharded complex event processor.
//!
//! In the paper's prototype the physical device layer, the Cleaning and
//! Association Layer, and the complex event processor are separate
//! components connected by sockets. This module reproduces that deployment
//! shape: a *device* thread streams wire-encoded reading frames
//! ([`sase_rfid::wire`]) into a channel, a *cleaning* thread decodes and
//! runs the five-layer pipeline, and an *engine* stage executes the
//! continuous queries — with crossbeam channels standing in for the
//! sockets. Events travel between the cleaning and engine stages in
//! tick-sized batches so channel, routing, and output handling costs are
//! amortized ([`Engine::process_batch`]).
//!
//! The engine stage is pluggable through the unified
//! [`EventProcessor`] surface: a single [`Engine`], a [`ShardedEngine`]
//! that partitions the registered queries across N engine workers, or a
//! durable wrapper around either. Each query's state is independent, so
//! sharding by query is semantics-preserving; the shards' emissions are
//! merged on their provenance tags ([`sase_core::engine::Emission`]) so a
//! sharded run reproduces the single-engine output sequence byte for byte.
//!
//! The single-threaded [`crate::SaseSystem`] is the reference; both the
//! pipelined and the sharded deployments produce exactly the same
//! detections (the stages are deterministic and order-preserving), which
//! the tests assert.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::thread;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};

use sase_core::analyze;
use sase_core::engine::{Emission, Engine, RoutingMode, Sink};
use sase_core::error::{Result as CoreResult, SaseError};
use sase_core::event::{Event, SchemaRegistry};
use sase_core::functions::FunctionRegistry;
use sase_core::hash::FxHasher;
use sase_core::lang::{parse_query, Query};
use sase_core::output::ComplexEvent;
use sase_core::plan::{Planner, PlannerOptions, QueryPlan, TypeKeyAccess};
use sase_core::processor::EventProcessor;
use sase_core::runtime::RuntimeStats;
use sase_core::snapshot::SnapshotSet;
use sase_core::time::{TimeScale, Timestamp};
use sase_obs::{Counter, Gauge, MetricValue, MetricsRegistry, MetricsSnapshot, TraceKind, Tracer};

use sase_rfid::wire::{decode_frame, encode_frame};
use sase_stream::pipeline::CleaningPipeline;
use sase_stream::reading::RawReading;
use sase_stream::Tick;

/// Channel capacity between stages (frames / event batches in flight).
const STAGE_CAPACITY: usize = 64;

/// Wrap a planner failure in a [`SaseError::Registration`], attaching the
/// static analyzer's lint code when it can pin the failure to one.
fn registration_error(
    name: &str,
    query: &Query,
    registry: &SchemaRegistry,
    functions: &FunctionRegistry,
    time_scale: Option<TimeScale>,
    err: SaseError,
) -> SaseError {
    let code = analyze::analyze_with(query, registry, functions, time_scale.unwrap_or_default())
        .into_iter()
        .find(|d| d.severity == analyze::Severity::Error)
        .map(|d| d.code.to_string());
    SaseError::registration(name, code, err.to_string())
}

/// The slot a diagnostic severity counts into (`sase_diagnostics_emitted_total`).
fn severity_index(s: analyze::Severity) -> usize {
    match s {
        analyze::Severity::Info => 0,
        analyze::Severity::Warning => 1,
        analyze::Severity::Error => 2,
    }
}

/// Deployment-level shard-router metrics: per-shard routing counters and
/// queue-depth gauges, plus the registration-time diagnostics counter.
/// Handles are resolved once at build time; the dispatch path only does
/// atomic adds.
struct ShardMetrics {
    /// The deployment's own registry (worker engines each keep a
    /// worker-local registry; [`ShardedEngine::metrics`] merges them).
    registry: MetricsRegistry,
    /// Per shard: cumulative events shipped to that worker.
    events_routed: Vec<Counter>,
    /// Per shard: cumulative batches shipped to that worker.
    batches: Vec<Counter>,
    /// Per shard: events currently in flight to the worker — set at
    /// dispatch, cleared once the worker's result is drained. (The
    /// vendored channel exposes no queue length, so the router maintains
    /// the gauge at its own send/recv seam.)
    queue_depth: Vec<Gauge>,
    /// Diagnostics surfaced at query registration, indexed by
    /// [`severity_index`].
    diagnostics: [Counter; 3],
}

impl ShardMetrics {
    fn new(registry: MetricsRegistry, shards: usize) -> ShardMetrics {
        let mut events_routed = Vec::with_capacity(shards);
        let mut batches = Vec::with_capacity(shards);
        let mut queue_depth = Vec::with_capacity(shards);
        for s in 0..shards {
            let shard = s.to_string();
            let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
            events_routed.push(registry.counter("sase_shard_events_routed_total", labels));
            batches.push(registry.counter("sase_shard_batches_total", labels));
            queue_depth.push(registry.gauge("sase_shard_queue_depth", labels));
        }
        let diagnostics = [
            registry.counter("sase_diagnostics_emitted_total", &[("severity", "info")]),
            registry.counter("sase_diagnostics_emitted_total", &[("severity", "warning")]),
            registry.counter("sase_diagnostics_emitted_total", &[("severity", "error")]),
        ];
        ShardMetrics {
            registry,
            events_routed,
            batches,
            queue_depth,
            diagnostics,
        }
    }

    /// Record a sub-batch of `events` leaving for `shard`.
    fn dispatched(&self, shard: usize, events: usize) {
        self.events_routed[shard].add(events as u64);
        self.batches[shard].inc();
        self.queue_depth[shard].set(events as f64);
    }

    /// Record `shard`'s result having been drained.
    fn drained(&self, shard: usize) {
        self.queue_depth[shard].set(0.0);
    }
}

/// Outcome of a pipelined run.
#[derive(Debug)]
pub struct PipelinedRun {
    /// Every composite event, in emission order.
    pub detections: Vec<ComplexEvent>,
    /// Events that left the cleaning stage.
    pub events_generated: usize,
    /// Frames the device stage shipped.
    pub frames_shipped: usize,
}

/// Run a scripted reading source through cleaning and an engine stage, one
/// thread per layer.
///
/// `ticks` yields each scan cycle's readings in order (the device stage
/// encodes them to wire frames); `pipeline` and `engine` are consumed by
/// their stages. The engine stage is any [`EventProcessor`] — a single
/// [`Engine`], a [`ShardedEngine`], a durable wrapper, or the `Sase`
/// facade. The cleaning stage ships each tick's events as one batch.
/// Errors from any stage abort the run.
pub fn run_pipelined<I, E>(
    ticks: I,
    mut pipeline: CleaningPipeline,
    mut engine: E,
) -> CoreResult<PipelinedRun>
where
    I: IntoIterator<Item = (Tick, Vec<RawReading>)> + Send + 'static,
    I::IntoIter: Send,
    E: EventProcessor,
{
    let (frame_tx, frame_rx): (Sender<Bytes>, Receiver<Bytes>) = bounded(STAGE_CAPACITY);
    let (batch_tx, batch_rx): (Sender<Vec<Event>>, Receiver<Vec<Event>>) = bounded(STAGE_CAPACITY);

    // Stage 1: the device layer ships frames "over the socket".
    let device = thread::spawn(move || -> CoreResult<usize> {
        let mut shipped = 0usize;
        for (tick, readings) in ticks {
            let frame = encode_frame(tick, &readings)
                .map_err(|e| SaseError::engine(format!("wire encode: {e}")))?;
            if frame_tx.send(frame).is_err() {
                break; // downstream closed (error path)
            }
            shipped += 1;
        }
        Ok(shipped)
    });

    // Stage 2: cleaning and association, one event batch per tick.
    let cleaning = thread::spawn(move || -> CoreResult<usize> {
        let mut generated = 0usize;
        for frame in frame_rx {
            let (tick, readings) =
                decode_frame(frame).map_err(|e| SaseError::engine(format!("wire decode: {e}")))?;
            let events = pipeline.process_tick(tick, &readings)?;
            if events.is_empty() {
                continue;
            }
            generated += events.len();
            if batch_tx.send(events).is_err() {
                return Ok(generated); // downstream closed
            }
        }
        Ok(generated)
    });

    // Stage 3: the complex event processor (this thread).
    let mut detections = Vec::new();
    for batch in batch_rx {
        detections.extend(engine.process_batch(&batch)?);
    }

    let frames_shipped = device
        .join()
        .map_err(|_| SaseError::engine("device stage panicked"))??;
    let events_generated = cleaning
        .join()
        .map_err(|_| SaseError::engine("cleaning stage panicked"))??;

    Ok(PipelinedRun {
        detections,
        events_generated,
        frames_shipped,
    })
}

/// Convenience: pre-render a simulator + scenario into the tick iterator
/// [`run_pipelined`] consumes.
pub fn scripted_ticks(
    mut sim: sase_rfid::sim::RfidSimulator,
    scenario: &sase_rfid::scenario::RetailScenario,
) -> Vec<(Tick, Vec<RawReading>)> {
    let mut out = Vec::with_capacity(scenario.duration as usize);
    for tick in 0..scenario.duration {
        scenario.apply_tick(&mut sim, tick);
        out.push((tick, sim.tick()));
    }
    out
}

// ---------------------------------------------------------------------------
// Sharded engine deployment
// ---------------------------------------------------------------------------

/// The pure stdlib functions ([`FunctionRegistry::with_stdlib`]); sharing
/// one of these across shards never needs co-location.
const STDLIB_FUNCTIONS: [&str; 5] = ["_abs", "_min", "_max", "_concat", "_len"];

/// The error text a panicking shard engine surfaces as; the router watches
/// for it to latch a data-parallel deployment poisoned.
const SHARD_PANIC_MSG: &str = "engine shard panicked";

/// The deterministic rejection every ingest call gets after a worker panic
/// in [`ShardingMode::ByPartitionKey`]: a panicking worker may have lost
/// arbitrary in-flight state, so byte-identity with the reference can no
/// longer be promised.
const POISONED_MSG: &str = "sharded deployment poisoned: an engine shard panicked mid-batch; \
                            rebuild the deployment and restore from a checkpoint";

/// How a [`ShardedEngine`] splits work across its engine workers.
///
/// * [`ShardingMode::ByQuery`] (query-parallel, the default) partitions
///   the *query set*: every worker sees every event but runs only its
///   queries. Scales with the number of independent query components;
///   each worker still pays the full per-event routing loop.
/// * [`ShardingMode::ByPartitionKey`] (data-parallel) partitions the
///   *stream*: every worker runs **all** distributable queries, and each
///   event is routed to one worker by hashing its partition-key value.
///   Queries whose plan exposes no statically-resolvable routing key
///   ([`QueryPlan::routing_keys`]) — no `PARTITION BY`-shaped equivalence
///   class, an uncovered negated slot, `INTO`/`FROM` derivation chains,
///   or non-stdlib host functions — are pinned to a designated extra
///   worker that receives the whole stream. Scales with input rate, which
///   is what the paper's workloads (mostly per-tag equivalence queries)
///   need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardingMode {
    /// Partition the query set across workers (query-parallel).
    #[default]
    ByQuery,
    /// Partition the event stream by partition-key hash (data-parallel).
    ByPartitionKey,
}

/// Builds a [`ShardedEngine`]: register the full query set, then
/// [`ShardedEngineBuilder::build`] partitions it across N engine workers.
///
/// Partitioning is constrained by two co-location rules that keep sharding
/// semantics-preserving:
///
/// * **Derivation chains stay together.** A query consuming `FROM s` is
///   placed with every query producing `INTO s` (transitively), because
///   derived events are re-ingested inside the producing shard only.
/// * **Shared host functions stay together.** Queries calling a common
///   non-stdlib function are co-located so a stateful host function (the
///   paper's `_updateLocation`) sees its calls in the single-engine order.
///   Host functions with *hidden* shared state across different names are
///   the deployer's responsibility.
pub struct ShardedEngineBuilder {
    registry: SchemaRegistry,
    functions: FunctionRegistry,
    time_scale: Option<TimeScale>,
    routing: Option<RoutingMode>,
    mode: ShardingMode,
    metrics: bool,
    /// Diagnostics counted at builder registrations (by
    /// [`severity_index`]), transferred into the deployment registry at
    /// [`ShardedEngineBuilder::build`].
    diag_counts: [u64; 3],
    queries: Vec<(String, QueryPlan)>,
}

impl ShardedEngineBuilder {
    /// Create a builder over a schema registry with the standard pure
    /// built-ins pre-registered.
    pub fn new(registry: SchemaRegistry) -> Self {
        Self::with_functions(registry, FunctionRegistry::with_stdlib())
    }

    /// Create a builder with an explicit function registry (shared by all
    /// shards).
    pub fn with_functions(registry: SchemaRegistry, functions: FunctionRegistry) -> Self {
        ShardedEngineBuilder {
            registry,
            functions,
            time_scale: None,
            routing: None,
            mode: ShardingMode::ByQuery,
            metrics: false,
            diag_counts: [0; 3],
            queries: Vec::new(),
        }
    }

    /// Enable metrics on the deployment (default: off). Each worker engine
    /// gets a worker-local [`MetricsRegistry`] (see
    /// [`Engine::enable_metrics`]) and the router keeps per-shard routing
    /// counters; [`ShardedEngine::metrics`] merges all of them into one
    /// deterministic snapshot.
    pub fn set_metrics(&mut self, on: bool) {
        self.metrics = on;
    }

    /// Select how the deployment splits work across workers (default:
    /// [`ShardingMode::ByQuery`]). Both modes emit identical outputs; see
    /// [`ShardingMode`] for when each wins.
    pub fn set_sharding(&mut self, mode: ShardingMode) {
        self.mode = mode;
    }

    /// Set the logical time scale used for WITHIN conversion.
    pub fn set_time_scale(&mut self, scale: TimeScale) {
        self.time_scale = Some(scale);
    }

    /// Select how each shard's engine matches events to queries (default:
    /// [`RoutingMode::Indexed`]). Both modes emit identical outputs.
    pub fn set_routing(&mut self, mode: RoutingMode) {
        self.routing = Some(mode);
    }

    /// Register a continuous query from source text with default options.
    pub fn register(&mut self, name: &str, src: &str) -> CoreResult<()> {
        self.register_with(name, src, PlannerOptions::default())
    }

    /// Register a continuous query with explicit planner options.
    pub fn register_with(
        &mut self,
        name: &str,
        src: &str,
        options: PlannerOptions,
    ) -> CoreResult<()> {
        if self.queries.iter().any(|(n, _)| n == name) {
            return Err(SaseError::registration(
                name,
                None,
                "a query with this name is already registered",
            ));
        }
        let query =
            parse_query(src).map_err(|e| SaseError::registration(name, None, e.to_string()))?;
        if self.metrics {
            // Mirror `Engine::register_with`: every diagnostic the static
            // analyzer raises at registration is counted by severity (the
            // counts land in the deployment registry at `build`).
            for d in analyze::analyze_with(
                &query,
                &self.registry,
                &self.functions,
                self.time_scale.unwrap_or_default(),
            ) {
                self.diag_counts[severity_index(d.severity)] += 1;
            }
        }
        let mut planner = Planner::new(self.registry.clone(), self.functions.clone());
        if let Some(scale) = self.time_scale {
            planner = planner.with_time_scale(scale);
        }
        let plan = planner.plan_with(&query, options).map_err(|e| {
            registration_error(
                name,
                &query,
                &self.registry,
                &self.functions,
                self.time_scale,
                e,
            )
        })?;
        self.queries.push((name.to_string(), plan));
        Ok(())
    }

    /// Partition the registered queries across `shards` engine workers and
    /// instantiate the deployment. A deployment may be built with fewer
    /// queries than shards (even with none): later
    /// [`ShardedEngine::register`] calls place new queries on the
    /// least-loaded compatible shard.
    pub fn build(self, shards: usize) -> CoreResult<ShardedEngine> {
        if self.mode == ShardingMode::ByPartitionKey {
            return self.build_partitioned(shards);
        }
        let n_queries = self.queries.len();
        // Union-find over query indices.
        let mut parent: Vec<usize> = (0..n_queries).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        fn union(parent: &mut [usize], a: usize, b: usize) {
            let (ra, rb) = (find(parent, a), find(parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }

        // Rule 1: producers of a stream with each other and with its
        // consumers.
        let mut producers: HashMap<String, Vec<usize>> = HashMap::new();
        let mut consumers: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, (_, plan)) in self.queries.iter().enumerate() {
            if let Some(into) = &plan.return_plan.into {
                producers
                    .entry(into.to_ascii_lowercase())
                    .or_default()
                    .push(i);
            }
            if let Some(from) = &plan.query.from {
                consumers
                    .entry(from.to_ascii_lowercase())
                    .or_default()
                    .push(i);
            }
        }
        for (stream, prod) in &producers {
            let mut members = prod.clone();
            if let Some(cons) = consumers.get(stream) {
                members.extend_from_slice(cons);
            }
            for w in members.windows(2) {
                union(&mut parent, w[0], w[1]);
            }
        }

        // Rule 2: queries sharing a non-stdlib function.
        let mut by_function: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, (_, plan)) in self.queries.iter().enumerate() {
            for f in plan.query.called_functions() {
                if !STDLIB_FUNCTIONS.contains(&f.as_str()) {
                    by_function.entry(f).or_default().push(i);
                }
            }
        }
        for members in by_function.values() {
            for w in members.windows(2) {
                union(&mut parent, w[0], w[1]);
            }
        }

        // Components in first-appearance order, assigned round-robin.
        let shard_count = shards.max(1);
        let mut component_of: HashMap<usize, usize> = HashMap::new();
        let assignment: Vec<usize> = (0..n_queries)
            .map(|i| {
                let root = find(&mut parent, i);
                let next = component_of.len();
                *component_of.entry(root).or_insert(next) % shard_count
            })
            .collect();

        // Instantiate shards; queries installed in global registration
        // order so every shard's local order is consistent with it.
        let mut shards_vec: Vec<Engine> = (0..shard_count)
            .map(|_| {
                let mut e = Engine::with_functions(self.registry.clone(), self.functions.clone());
                if let Some(scale) = self.time_scale {
                    e.set_time_scale(scale);
                }
                if let Some(mode) = self.routing {
                    e.set_routing(mode);
                }
                if self.metrics {
                    // Worker-local registry: recording stays uncontended;
                    // `ShardedEngine::metrics` merges the workers' views.
                    e.enable_metrics(&MetricsRegistry::new());
                }
                e
            })
            .collect();
        let mut local_to_global: Vec<Vec<u32>> = vec![Vec::new(); shard_count];
        let mut names = Vec::with_capacity(n_queries);
        let mut meta = Vec::with_capacity(n_queries);
        for (global, (name, plan)) in self.queries.into_iter().enumerate() {
            let s = assignment[global];
            meta.push(QueryMeta::of(&plan));
            shards_vec[s].install(&name, plan)?;
            local_to_global[s].push(global as u32);
            names.push(name);
        }

        // A single shard runs inline (no worker thread, no tagging/merge
        // overhead); multi-shard deployments get one persistent worker
        // thread per shard.
        let (inline, workers) = if shards_vec.len() == 1 {
            (Some(shards_vec.pop().expect("one shard")), Vec::new())
        } else {
            (
                None,
                shards_vec.into_iter().map(ShardWorker::spawn).collect(),
            )
        };

        Ok(ShardedEngine {
            inline,
            workers,
            registry: self.registry,
            functions: self.functions,
            time_scale: self.time_scale,
            local_to_global,
            names,
            meta,
            components: component_of.len(),
            partition: None,
            metrics: Self::deployment_metrics(self.metrics, shard_count, self.diag_counts),
            tracer: Tracer::disabled(),
            batch_seq: 0,
        })
    }

    /// Build the deployment-level [`ShardMetrics`] (when enabled),
    /// seeding the diagnostics counter with the builder-time counts.
    fn deployment_metrics(on: bool, shards: usize, diag_counts: [u64; 3]) -> Option<ShardMetrics> {
        if !on {
            return None;
        }
        let m = ShardMetrics::new(MetricsRegistry::new(), shards);
        for (slot, n) in m.diagnostics.iter().zip(diag_counts) {
            slot.add(n);
        }
        Some(m)
    }

    /// Instantiate a [`ShardingMode::ByPartitionKey`] deployment: `shards`
    /// data workers plus one designated *pinned* worker. Distributable
    /// queries (see [`PartitionState::claim`]) are installed on **every**
    /// data worker; everything else goes to the pinned worker, which
    /// receives the whole stream.
    fn build_partitioned(self, shards: usize) -> CoreResult<ShardedEngine> {
        let data = shards.max(1);
        let mk = |registry: &SchemaRegistry, functions: &FunctionRegistry| {
            let mut e = Engine::with_functions(registry.clone(), functions.clone());
            if let Some(scale) = self.time_scale {
                e.set_time_scale(scale);
            }
            if let Some(mode) = self.routing {
                e.set_routing(mode);
            }
            if self.metrics {
                e.enable_metrics(&MetricsRegistry::new());
            }
            e
        };
        let mut engines: Vec<Engine> = (0..data + 1)
            .map(|_| mk(&self.registry, &self.functions))
            .collect();
        let mut st = PartitionState {
            data,
            claims: Vec::new(),
            distributed: Vec::new(),
            data_l2g: Vec::new(),
            pinned_l2g: Vec::new(),
            clocks: HashMap::new(),
            poisoned: false,
        };
        let mut names = Vec::with_capacity(self.queries.len());
        let mut meta = Vec::with_capacity(self.queries.len());
        for (global, (name, plan)) in self.queries.into_iter().enumerate() {
            let m = QueryMeta::of(&plan);
            let dist = st.claim(&m, &plan);
            if dist {
                for e in &mut engines[..data] {
                    e.install(&name, plan.clone())?;
                }
                st.data_l2g.push(global as u32);
            } else {
                engines[data].install(&name, plan)?;
                st.pinned_l2g.push(global as u32);
            }
            st.distributed.push(dist);
            names.push(name);
            meta.push(m);
        }
        Ok(ShardedEngine {
            inline: None,
            workers: engines.into_iter().map(ShardWorker::spawn).collect(),
            registry: self.registry,
            functions: self.functions,
            time_scale: self.time_scale,
            local_to_global: Vec::new(),
            names,
            meta,
            components: 0,
            partition: Some(Box::new(st)),
            // `data + 1` shards: the pinned worker is the last index.
            metrics: Self::deployment_metrics(self.metrics, data + 1, self.diag_counts),
            tracer: Tracer::disabled(),
            batch_seq: 0,
        })
    }
}

/// Co-location-relevant facts about a registered query, kept so queries
/// registered *after* [`ShardedEngineBuilder::build`] can be placed
/// consistently with the builder's partitioning rules.
#[derive(Debug, Clone)]
struct QueryMeta {
    /// `FROM` stream (normalized to lowercase).
    from: Option<String>,
    /// `INTO` stream (normalized to lowercase).
    into: Option<String>,
    /// Non-stdlib host functions the query calls.
    funcs: Vec<String>,
}

impl QueryMeta {
    fn of(plan: &QueryPlan) -> QueryMeta {
        QueryMeta {
            from: plan.query.from.as_deref().map(str::to_ascii_lowercase),
            into: plan
                .return_plan
                .into
                .as_deref()
                .map(str::to_ascii_lowercase),
            funcs: plan
                .query
                .called_functions()
                .into_iter()
                .filter(|f| !STDLIB_FUNCTIONS.contains(&f.as_str()))
                .collect(),
        }
    }
}

/// Router state of a [`ShardingMode::ByPartitionKey`] deployment.
///
/// Workers `0..data` are *data* workers, each running every distributable
/// query over its hash-slice of the stream; worker `data` is the *pinned*
/// worker running everything else over the whole stream.
struct PartitionState {
    /// Number of data workers (the pinned worker is at index `data`).
    data: usize,
    /// Per event type (indexed by `EventTypeId.0`): the accessor that
    /// extracts the routing key from events of that type. **Sticky**: a
    /// claim survives unregistering the query that made it, so replaying
    /// the same registration sequence after a crash reproduces the same
    /// event → worker routing (the property restore depends on). A query
    /// re-registered after an unregister may therefore end up pinned where
    /// a fresh build would distribute it.
    claims: Vec<Option<TypeKeyAccess>>,
    /// Per query (global registration order): distributed or pinned.
    distributed: Vec<bool>,
    /// Local → global query-index tables for emission remapping: all data
    /// workers share one table (they run the same queries in the same
    /// local order); the pinned worker has its own.
    data_l2g: Vec<u32>,
    pinned_l2g: Vec<u32>,
    /// Router-level per-stream monotonicity clocks, mirroring
    /// [`Engine`]'s: a data worker only sees a slice of the stream, so
    /// its own clocks cannot catch every regression the single-engine
    /// reference would reject.
    clocks: HashMap<Option<String>, Timestamp>,
    /// Latched after a worker panic: every subsequent ingest is rejected
    /// with [`POISONED_MSG`] (a panicking worker may have lost in-flight
    /// state, so byte-identity can no longer be promised).
    poisoned: bool,
}

impl PartitionState {
    /// Decide a query's disposition and commit its routing-key claims.
    ///
    /// A query is **pinned** when it consumes a derived stream (`FROM` —
    /// derived events are re-ingested inside the producing engine only),
    /// produces one (`INTO` — its consumers must see every derived
    /// event), or calls a non-stdlib host function (a stateful function
    /// must see its calls in single-engine order). Otherwise it is
    /// distributed iff one of its [`QueryPlan::routing_keys`] is
    /// compatible with the claims committed so far: every event type the
    /// query reacts to must either be unclaimed or already claimed with
    /// the same key attribute — the router extracts one key per event,
    /// so two queries asking different attributes of one type cannot
    /// both distribute.
    fn claim(&mut self, meta: &QueryMeta, plan: &QueryPlan) -> bool {
        if meta.from.is_some() || meta.into.is_some() || !meta.funcs.is_empty() {
            return false;
        }
        'candidate: for rk in &plan.routing_keys {
            if rk.per_type.is_empty() {
                continue;
            }
            for tk in &rk.per_type {
                if let Some(Some(existing)) = self.claims.get(tk.type_id.0 as usize) {
                    if existing.attr_lc != tk.attr_lc {
                        continue 'candidate;
                    }
                }
            }
            for tk in &rk.per_type {
                let idx = tk.type_id.0 as usize;
                if idx >= self.claims.len() {
                    self.claims.resize_with(idx + 1, || None);
                }
                if self.claims[idx].is_none() {
                    self.claims[idx] = Some(tk.clone());
                }
            }
            return true;
        }
        false
    }
}

/// Field-wise sum of two [`RuntimeStats`] (for aggregating a distributed
/// query's counters across data workers).
fn add_stats(total: &mut RuntimeStats, s: &RuntimeStats) {
    total.events_processed += s.events_processed;
    total.instances_appended += s.instances_appended;
    total.instances_pruned += s.instances_pruned;
    total.sequences_constructed += s.sequences_constructed;
    total.construction_filter_rejects += s.construction_filter_rejects;
    total.dropped_by_window += s.dropped_by_window;
    total.dropped_by_negation += s.dropped_by_negation;
    total.negation_candidates_buffered += s.negation_candidates_buffered;
    total.matches_emitted += s.matches_emitted;
    // Peaks on different workers need not coincide in time; the sum is an
    // upper bound on the deployment-wide peak.
    total.partial_runs_peak += s.partial_runs_peak;
    total.partitions += s.partitions;
}

/// A command executed by a shard worker thread.
enum ShardCmd {
    /// Process a batch; the tagged emissions go to the worker's persistent
    /// result channel.
    Batch {
        stream: Option<String>,
        events: Arc<Vec<Event>>,
    },
    /// Run an arbitrary closure against the shard's engine (stats,
    /// snapshot, restore); results travel through a channel the closure
    /// captures.
    With(Box<dyn FnOnce(&mut Engine) + Send>),
}

/// One persistent engine worker: the engine lives on its own thread for the
/// deployment's lifetime, fed through a command channel. Compared with
/// spawning scoped threads per batch this removes the per-batch
/// spawn/join and channel churn that made `sharded-4` *slower* than a
/// single indexed engine at high query counts.
struct ShardWorker {
    cmd_tx: Option<Sender<ShardCmd>>,
    batch_rx: Receiver<CoreResult<Vec<Emission>>>,
    handle: Option<thread::JoinHandle<()>>,
}

impl ShardWorker {
    fn spawn(mut engine: Engine) -> ShardWorker {
        let (cmd_tx, cmd_rx) = bounded::<ShardCmd>(STAGE_CAPACITY);
        let (batch_tx, batch_rx) = bounded::<CoreResult<Vec<Emission>>>(STAGE_CAPACITY);
        let handle = thread::spawn(move || {
            for cmd in cmd_rx {
                match cmd {
                    ShardCmd::Batch { stream, events } => {
                        // Panic isolation: a panicking shard engine becomes
                        // an error result, exactly like the former scoped
                        // per-batch threads; the worker (and so snapshot /
                        // stats / restore) stays alive.
                        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            engine.process_batch_tagged(stream.as_deref(), &events)
                        }))
                        .unwrap_or_else(|_| Err(SaseError::engine(SHARD_PANIC_MSG)));
                        if batch_tx.send(res).is_err() {
                            break; // deployment dropped mid-batch
                        }
                    }
                    ShardCmd::With(f) => {
                        // A panicking closure surfaces to the caller as a
                        // disconnected reply channel; keep the worker alive.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            f(&mut engine)
                        }));
                    }
                }
            }
        });
        ShardWorker {
            cmd_tx: Some(cmd_tx),
            batch_rx,
            handle: Some(handle),
        }
    }

    fn send(&self, cmd: ShardCmd) -> CoreResult<()> {
        self.cmd_tx
            .as_ref()
            .expect("live until drop")
            .send(cmd)
            .map_err(|_| SaseError::engine("engine shard worker disconnected"))
    }

    /// Run a closure on the worker's engine and wait for its result.
    fn call<R, F>(&self, f: F) -> CoreResult<R>
    where
        R: Send + 'static,
        F: FnOnce(&mut Engine) -> R + Send + 'static,
    {
        let (tx, rx) = bounded(1);
        self.send(ShardCmd::With(Box::new(move |engine| {
            let _ = tx.send(f(engine));
        })))?;
        rx.recv()
            .map_err(|_| SaseError::engine("engine shard worker disconnected"))
    }
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        // Closing the command channel ends the worker loop.
        self.cmd_tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// N engine workers over a partition of the registered queries.
///
/// [`ShardedEngine::process_batch`] broadcasts each batch to every shard in
/// parallel, collects provenance-tagged emissions
/// ([`sase_core::engine::Emission`]), remaps their per-shard query indices
/// to the global registration order, and merges on
/// [`Emission::order_key`] — reproducing, deterministically and byte for
/// byte, the output sequence of one engine running all the queries.
///
/// Each shard's engine lives on a **persistent worker thread** fed through
/// a command channel (`ShardWorker`); a batch costs two channel hops per
/// shard instead of a thread spawn/join. A deployment built with one shard
/// keeps its engine inline and pays no thread or merge overhead at all.
pub struct ShardedEngine {
    /// The single-shard fast path: the engine runs on the caller's thread.
    inline: Option<Engine>,
    /// Multi-shard deployments: one persistent worker per shard.
    workers: Vec<ShardWorker>,
    /// The shared schema registry (every shard holds a handle to it).
    registry: SchemaRegistry,
    /// The shared function registry, kept so queries can be planned (and
    /// placed) after the deployment is built.
    functions: FunctionRegistry,
    /// Time scale for WITHIN conversion in post-build registrations.
    time_scale: Option<TimeScale>,
    /// Per shard: local query index -> global registration index.
    local_to_global: Vec<Vec<u32>>,
    /// Query names in global registration order.
    names: Vec<String>,
    /// Co-location facts per query, aligned with `names`.
    meta: Vec<QueryMeta>,
    /// Co-location components created so far (monotone): post-build
    /// registrations of unconstrained queries continue the builder's
    /// round-robin component → shard assignment, so replaying the same
    /// registration sequence always reproduces the same partitioning
    /// (the property snapshot/restore depends on).
    components: usize,
    /// Data-parallel router state; `Some` iff the deployment was built
    /// with [`ShardingMode::ByPartitionKey`].
    partition: Option<Box<PartitionState>>,
    /// Deployment-level router metrics; `Some` iff the deployment was
    /// built with [`ShardedEngineBuilder::set_metrics`] on.
    metrics: Option<ShardMetrics>,
    /// Lifecycle tracing hook ([`ShardedEngine::set_tracer`]); disabled
    /// by default (one branch per batch).
    tracer: Tracer,
    /// Monotone batch id stamped on [`TraceKind::ShardDispatch`] spans.
    batch_seq: u64,
}

impl ShardedEngine {
    /// Number of engine workers.
    pub fn shard_count(&self) -> usize {
        if self.inline.is_some() {
            1
        } else {
            self.workers.len()
        }
    }

    /// Query names in global registration order.
    pub fn query_names(&self) -> &[String] {
        &self.names
    }

    /// Register a continuous query from source text with default options,
    /// placing it on a shard consistent with the builder's co-location
    /// rules (see [`ShardedEngine::register_with`]).
    pub fn register(&mut self, name: &str, src: &str) -> CoreResult<()> {
        self.register_with(name, src, PlannerOptions::default())
    }

    /// Register a continuous query on a live deployment.
    ///
    /// Placement follows the builder's co-location rules: a query that
    /// consumes a stream some registered query produces (`FROM` ↔ `INTO`),
    /// produces a stream another query produces or consumes, or shares a
    /// non-stdlib host function with a registered query is placed on that
    /// query's shard. An unconstrained query starts a new co-location
    /// component and continues the builder's round-robin component →
    /// shard assignment, so replaying the same registration sequence
    /// (build-time and post-build calls, in order) always reproduces the
    /// same partitioning — which is what lets a checkpointed deployment
    /// be rebuilt and restored. If the rules demand co-location with
    /// queries on *different* shards, registration fails — rebuild the
    /// deployment through [`ShardedEngineBuilder`] to repartition.
    pub fn register_with(
        &mut self,
        name: &str,
        src: &str,
        options: PlannerOptions,
    ) -> CoreResult<()> {
        if self.names.iter().any(|n| n == name) {
            return Err(SaseError::registration(
                name,
                None,
                "a query with this name is already registered",
            ));
        }
        let query =
            parse_query(src).map_err(|e| SaseError::registration(name, None, e.to_string()))?;
        if let Some(m) = &self.metrics {
            // Post-build registrations count their diagnostics straight
            // into the deployment registry (the builder path accumulates
            // and transfers at `build`).
            for d in analyze::analyze_with(
                &query,
                &self.registry,
                &self.functions,
                self.time_scale.unwrap_or_default(),
            ) {
                m.diagnostics[severity_index(d.severity)].inc();
            }
        }
        let mut planner = Planner::new(self.registry.clone(), self.functions.clone());
        if let Some(scale) = self.time_scale {
            planner = planner.with_time_scale(scale);
        }
        let plan = planner.plan_with(&query, options).map_err(|e| {
            registration_error(
                name,
                &query,
                &self.registry,
                &self.functions,
                self.time_scale,
                e,
            )
        })?;
        let meta = QueryMeta::of(&plan);
        if self.partition.is_some() {
            return self.register_partitioned(name, plan, meta);
        }
        let placed = self.place(&meta, name)?;
        let shard = placed.unwrap_or(self.components % self.shard_count());
        match &mut self.inline {
            Some(engine) => engine.install(name, plan)?,
            None => {
                let n = name.to_string();
                self.workers[shard].call(move |engine| engine.install(&n, plan))??;
            }
        }
        if placed.is_none() {
            self.components += 1;
        }
        self.local_to_global[shard].push(self.names.len() as u32);
        self.names.push(name.to_string());
        self.meta.push(meta);
        Ok(())
    }

    /// Statically analyze query text against this deployment — its
    /// schemas, functions, time scale, and registered queries — *without*
    /// registering it. See [`sase_core::analyze()`] for the lint catalogue.
    pub fn check(&self, src: &str) -> Vec<analyze::Diagnostic> {
        let existing: Vec<(String, Query)> = self
            .names
            .iter()
            .filter_map(|n| {
                let text = self.query_text(n).ok()?;
                Some((n.clone(), parse_query(&text).ok()?))
            })
            .collect();
        analyze::check_src(
            src,
            &self.registry,
            &self.functions,
            self.time_scale.unwrap_or_default(),
            &existing,
        )
    }

    /// The shard a new query's co-location links pin it to (`None` when
    /// unconstrained); an error when the links span two shards.
    fn place(&self, meta: &QueryMeta, name: &str) -> CoreResult<Option<usize>> {
        let mut constrained: Option<usize> = None;
        for (global, m) in self.meta.iter().enumerate() {
            let linked = (meta.from.is_some() && m.into == meta.from)
                || (meta.into.is_some() && (m.into == meta.into || m.from == meta.into))
                || m.funcs.iter().any(|f| meta.funcs.contains(f));
            if !linked {
                continue;
            }
            let shard = self
                .shard_of_global(global as u32)
                .expect("registered queries have a shard");
            match constrained {
                None => constrained = Some(shard),
                Some(s) if s == shard => {}
                Some(s) => {
                    return Err(SaseError::registration(
                        name,
                        None,
                        format!(
                            "must be co-located with queries on shards {s} and {shard}; \
                             rebuild the deployment with ShardedEngineBuilder to repartition"
                        ),
                    ))
                }
            }
        }
        Ok(constrained)
    }

    /// Post-build registration in [`ShardingMode::ByPartitionKey`] mode:
    /// decide the disposition (see [`PartitionState::claim`]), install on
    /// every data worker or on the pinned worker, extend the bookkeeping.
    fn register_partitioned(
        &mut self,
        name: &str,
        plan: QueryPlan,
        meta: QueryMeta,
    ) -> CoreResult<()> {
        let st = self.partition.as_mut().expect("partition mode");
        let dist = st.claim(&meta, &plan);
        let data = st.data;
        if dist {
            for w in &self.workers[..data] {
                let n = name.to_string();
                let p = plan.clone();
                w.call(move |engine| engine.install(&n, p))??;
            }
        } else {
            let n = name.to_string();
            self.workers[data].call(move |engine| engine.install(&n, plan))??;
        }
        let global = self.names.len() as u32;
        let st = self.partition.as_mut().expect("partition mode");
        if dist {
            st.data_l2g.push(global);
        } else {
            st.pinned_l2g.push(global);
        }
        st.distributed.push(dist);
        self.names.push(name.to_string());
        self.meta.push(meta);
        Ok(())
    }

    /// Delete a query in [`ShardingMode::ByPartitionKey`] mode. The
    /// routing-key claims it committed stay in place (see
    /// [`PartitionState::claims`]).
    fn unregister_partitioned(&mut self, name: &str) -> bool {
        let Some(global) = self.names.iter().position(|n| n == name) else {
            return false;
        };
        let st = self.partition.as_ref().expect("partition mode");
        let dist = st.distributed[global];
        let data = st.data;
        let removed = if dist {
            let mut all = true;
            for w in &self.workers[..data] {
                let n = name.to_string();
                all &= w.call(move |engine| engine.unregister(&n)).unwrap_or(false);
            }
            all
        } else {
            let n = name.to_string();
            self.workers[data]
                .call(move |engine| engine.unregister(&n))
                .unwrap_or(false)
        };
        if !removed {
            return false;
        }
        let g = global as u32;
        self.names.remove(global);
        self.meta.remove(global);
        let st = self.partition.as_mut().expect("partition mode");
        st.distributed.remove(global);
        for table in [&mut st.data_l2g, &mut st.pinned_l2g] {
            table.retain(|&x| x != g);
            for x in table.iter_mut() {
                if *x > g {
                    *x -= 1;
                }
            }
        }
        true
    }

    /// Delete a query, wherever it is hosted. Returns true if it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        if self.partition.is_some() {
            return self.unregister_partitioned(name);
        }
        let Some(global) = self.names.iter().position(|n| n == name) else {
            return false;
        };
        let g = global as u32;
        let shard = self
            .shard_of_global(g)
            .expect("registered queries have a shard");
        let removed = match &mut self.inline {
            Some(engine) => engine.unregister(name),
            None => {
                let n = name.to_string();
                self.workers[shard]
                    .call(move |engine| engine.unregister(&n))
                    .unwrap_or(false)
            }
        };
        if !removed {
            return false;
        }
        self.names.remove(global);
        self.meta.remove(global);
        // Renumber the global registration indices past the removed one.
        for table in &mut self.local_to_global {
            table.retain(|&x| x != g);
            for x in table.iter_mut() {
                if *x > g {
                    *x -= 1;
                }
            }
        }
        true
    }

    /// Attach an output sink to a query, wherever it is hosted. Sinks of
    /// queries on worker shards fire on the worker's thread. In
    /// [`ShardingMode::ByPartitionKey`] mode a distributed query's sink is
    /// shared by every data worker behind a mutex: it sees every output,
    /// but cross-worker delivery order is unspecified (per-worker order is
    /// preserved).
    pub fn add_sink(&mut self, name: &str, sink: Sink) -> CoreResult<()> {
        if let Some(st) = &self.partition {
            let global = self
                .names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| SaseError::engine(format!("no query named `{name}`")))?;
            if st.distributed[global] {
                let shared = Arc::new(Mutex::new(sink));
                for w in &self.workers[..st.data] {
                    let n = name.to_string();
                    let s = shared.clone();
                    w.call(move |engine| {
                        engine.add_sink(
                            &n,
                            Box::new(move |ce| {
                                let mut sink = s.lock().expect("sink lock");
                                sink(ce);
                            }),
                        )
                    })??;
                }
                return Ok(());
            }
        }
        let shard = self
            .shard_of(name)
            .ok_or_else(|| SaseError::engine(format!("no query named `{name}`")))?;
        match &mut self.inline {
            Some(engine) => engine.add_sink(name, sink),
            None => {
                let name = name.to_string();
                self.workers[shard].call(move |engine| engine.add_sink(&name, sink))?
            }
        }
    }

    /// Runtime counters of a query, wherever it is hosted. A distributed
    /// query's counters ([`ShardingMode::ByPartitionKey`]) are summed
    /// field-wise across the data workers; `partial_runs_peak` becomes an
    /// upper bound on the deployment-wide peak (per-worker peaks need not
    /// coincide in time).
    pub fn stats(&self, name: &str) -> CoreResult<RuntimeStats> {
        if let Some(st) = &self.partition {
            let global = self
                .names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| SaseError::engine(format!("no query named `{name}`")))?;
            if st.distributed[global] {
                let mut total = RuntimeStats::default();
                for w in &self.workers[..st.data] {
                    let n = name.to_string();
                    let s = w.call(move |engine| engine.stats(&n))??;
                    add_stats(&mut total, &s);
                }
                return Ok(total);
            }
        }
        self.query_call(name, |engine, name| engine.stats(name))
    }

    /// EXPLAIN output of a query's plan, wherever it is hosted.
    pub fn explain(&self, name: &str) -> CoreResult<String> {
        self.query_call(name, |engine, name| engine.explain(name))
    }

    /// The source text (canonical form) of a query, wherever it is hosted.
    pub fn query_text(&self, name: &str) -> CoreResult<String> {
        self.query_call(name, |engine, name| engine.query_text(name))
    }

    /// Run a read-only per-query accessor on the engine hosting `name`.
    fn query_call<R, F>(&self, name: &str, f: F) -> CoreResult<R>
    where
        R: Send + 'static,
        F: FnOnce(&Engine, &str) -> CoreResult<R> + Send + 'static,
    {
        if let Some(st) = &self.partition {
            let global = self
                .names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| SaseError::engine(format!("no query named `{name}`")))?;
            // Every data worker holds an identical copy of a distributed
            // query's plan; worker 0 answers for all of them.
            let w = if st.distributed[global] { 0 } else { st.data };
            let name = name.to_string();
            return self.workers[w].call(move |engine| f(engine, &name))?;
        }
        let shard = self
            .shard_of(name)
            .ok_or_else(|| SaseError::engine(format!("no query named `{name}`")))?;
        if let Some(engine) = &self.inline {
            return f(engine, name);
        }
        let name = name.to_string();
        self.workers[shard].call(move |engine| f(engine, &name))?
    }

    /// The shared schema registry (all shards hold handles to one
    /// registry, so derived `INTO` types registered by any shard are
    /// visible to every other).
    pub fn schemas(&self) -> &SchemaRegistry {
        &self.registry
    }

    /// Install a lifecycle tracer on the router and every worker engine
    /// ([`TraceKind::ShardDispatch`] spans here, per-engine batch/query
    /// spans inside the workers). Worker spans fire on the worker threads.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.clone();
        if let Some(engine) = &mut self.inline {
            engine.set_tracer(tracer);
            return;
        }
        for w in &self.workers {
            let t = tracer.clone();
            let _ = w.call(move |engine| engine.set_tracer(t));
        }
    }

    /// The deployment-level registry (per-shard routing series), when the
    /// deployment was built with [`ShardedEngineBuilder::set_metrics`] on.
    /// Worker-local engine registries are folded in by
    /// [`ShardedEngine::metrics`], not reachable from here.
    pub fn metrics_registry(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref().map(|m| &m.registry)
    }

    /// A deterministic metrics snapshot of the whole deployment: the
    /// router's per-shard series, every worker engine's local registry
    /// (merged — same-identity series sum), a derived
    /// `sase_shard_imbalance_ratio` gauge (max/mean events routed across
    /// data shards), and the per-query [`RuntimeStats`] promoted to
    /// `sase_query_*{query=…}` series.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut parts: Vec<MetricsSnapshot> = Vec::new();
        if let Some(m) = &self.metrics {
            parts.push(m.registry.snapshot());
        }
        if let Some(engine) = &self.inline {
            if let Some(r) = engine.metrics_registry() {
                parts.push(r.snapshot());
            }
        }
        for w in &self.workers {
            if let Ok(Some(snap)) = w.call(|engine| engine.metrics_registry().map(|r| r.snapshot()))
            {
                parts.push(snap);
            }
        }
        let mut snap = MetricsSnapshot::merged(parts);
        if let Some(m) = &self.metrics {
            // Imbalance over the shards that share routed work: the data
            // workers in ByPartitionKey mode, every shard in ByQuery mode.
            let data = self
                .partition
                .as_ref()
                .map(|st| st.data)
                .unwrap_or(m.events_routed.len());
            let routed: Vec<u64> = m.events_routed[..data].iter().map(|c| c.get()).collect();
            let total: u64 = routed.iter().sum();
            if total > 0 {
                let mean = total as f64 / routed.len() as f64;
                let max = routed.iter().copied().max().unwrap_or(0) as f64;
                snap.push(
                    "sase_shard_imbalance_ratio",
                    &[],
                    MetricValue::Gauge(max / mean),
                );
            }
        }
        for name in &self.names {
            if let Ok(s) = self.stats(name) {
                s.export_metrics(name, &mut snap);
            }
        }
        snap
    }

    /// Serializable image of every shard's engine state, one
    /// [`sase_core::snapshot::EngineSnapshot`] per shard in shard order.
    ///
    /// Together with deterministic partitioning — replaying the same
    /// registration sequence (builder registrations, then any post-build
    /// [`ShardedEngine::register`] / [`ShardedEngine::unregister`] calls,
    /// in the same order) always reproduces the same query → shard
    /// assignment — this makes a sharded deployment checkpointable:
    /// rebuild it the same way, then restore the snapshot set.
    pub fn snapshot(&self) -> SnapshotSet {
        if let Some(engine) = &self.inline {
            return SnapshotSet::single(engine.snapshot());
        }
        let mut set = SnapshotSet {
            engines: self
                .workers
                .iter()
                .map(|w| {
                    // Workers isolate engine panics (batch errors leave
                    // them alive and snapshotable); this can only fail if
                    // `Engine::snapshot` itself panics, which propagates
                    // just as it did when the engines lived inline.
                    w.call(|engine| engine.snapshot())
                        .expect("shard workers survive batch errors")
                })
                .collect(),
        };
        if let Some(st) = &self.partition {
            // The pinned worker is skipped entirely while it hosts no
            // queries, so its own clocks may lag the router's. Overlay
            // the authoritative router clocks onto the pinned slot —
            // `restore` rebuilds the router clocks from there. `max`
            // keeps derived-stream entries the pinned engine minted
            // itself; sorting makes snapshot bytes deterministic.
            let snap = &mut set.engines[st.data];
            for (stream, ts) in &st.clocks {
                match snap.stream_clocks.iter_mut().find(|(s, _)| s == stream) {
                    Some((_, t)) => *t = (*t).max(*ts),
                    None => snap.stream_clocks.push((stream.clone(), *ts)),
                }
            }
            snap.stream_clocks.sort();
        }
        set
    }

    /// Restore a snapshot set (one engine snapshot per shard, in shard
    /// order) onto a freshly rebuilt deployment with the same queries.
    pub fn restore(&mut self, snaps: &SnapshotSet) -> CoreResult<()> {
        if snaps.len() != self.shard_count() {
            return Err(SaseError::engine(format!(
                "snapshot mismatch: snapshot has {} shards, deployment has {}",
                snaps.len(),
                self.shard_count()
            )));
        }
        if let Some(engine) = &mut self.inline {
            return engine.restore(&snaps.engines[0]);
        }
        for (worker, snap) in self.workers.iter().zip(&snaps.engines) {
            let snap = snap.clone();
            worker.call(move |engine| engine.restore(&snap))??;
        }
        if let Some(st) = &mut self.partition {
            // `snapshot()` overlays the authoritative router clocks onto
            // the pinned slot, so that slot always carries the complete
            // stream clocks; restoring also clears a poison latch (the
            // restored state is consistent).
            st.clocks = snaps.engines[st.data]
                .stream_clocks
                .iter()
                .cloned()
                .collect();
            st.poisoned = false;
        }
        Ok(())
    }

    /// The deployment's sharding mode.
    pub fn sharding_mode(&self) -> ShardingMode {
        if self.partition.is_some() {
            ShardingMode::ByPartitionKey
        } else {
            ShardingMode::ByQuery
        }
    }

    /// Shard index hosting a query, for inspection. In
    /// [`ShardingMode::ByPartitionKey`] mode a distributed query runs on
    /// every data worker, so it has no single hosting shard (`None`);
    /// pinned queries report the designated pinned worker's index.
    pub fn shard_of(&self, name: &str) -> Option<usize> {
        let global = self.names.iter().position(|n| n == name)? as u32;
        self.shard_of_global(global)
    }

    fn shard_of_global(&self, global: u32) -> Option<usize> {
        if let Some(st) = &self.partition {
            return if st.distributed[global as usize] {
                None
            } else {
                Some(st.data)
            };
        }
        self.local_to_global
            .iter()
            .position(|t| t.contains(&global))
    }

    /// Process a batch of events on the default input stream.
    pub fn process_batch(&mut self, events: &[Event]) -> CoreResult<Vec<ComplexEvent>> {
        self.process_batch_on(None, events)
    }

    /// Process a batch of events on a named stream, merging the shards'
    /// emissions deterministically.
    pub fn process_batch_on(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
    ) -> CoreResult<Vec<ComplexEvent>> {
        if let Some(engine) = &mut self.inline {
            // Single shard: skip the tagging/merge machinery entirely.
            return engine.process_batch_on(stream, events);
        }
        Ok(self
            .process_batch_tagged(stream, events)?
            .into_iter()
            .map(|e| e.output)
            .collect())
    }

    /// Process a batch and return each emission with its provenance tag,
    /// with per-shard query indices already remapped to the global
    /// registration order and the whole sequence sorted by
    /// [`Emission::order_key`] — exactly what one engine over the union of
    /// the queries would have tagged.
    pub fn process_batch_tagged(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
    ) -> CoreResult<Vec<Emission>> {
        let seq = self.batch_seq;
        self.batch_seq = self.batch_seq.wrapping_add(1);
        if let Some(engine) = &mut self.inline {
            let span = self
                .tracer
                .begin(TraceKind::ShardDispatch, seq, events.len() as u64);
            if let Some(m) = &self.metrics {
                m.dispatched(0, events.len());
            }
            let out = engine.process_batch_tagged(stream, events);
            if let Some(m) = &self.metrics {
                m.drained(0);
            }
            if let Some(span) = span {
                self.tracer
                    .end(span, out.as_ref().map(|v| v.len() as u64).unwrap_or(0));
            }
            return out;
        }
        if self.partition.is_some() {
            return self.process_batch_partitioned(stream, events, seq);
        }
        let span = self
            .tracer
            .begin(TraceKind::ShardDispatch, seq, events.len() as u64);
        // One shared copy of the batch; events are cheap `Arc` handles.
        // Shards hosting no queries are skipped entirely — a deployment
        // with more shards than queries pays nothing for the idle workers.
        // (With no queries anywhere, every shard still sees the batch so
        // the engine-level stream-clock validation keeps running.)
        let shared = Arc::new(events.to_vec());
        let any_populated = self.local_to_global.iter().any(|t| !t.is_empty());
        let mut dispatched: Vec<usize> = Vec::with_capacity(self.workers.len());
        let mut send_err: Option<SaseError> = None;
        for (shard, worker) in self.workers.iter().enumerate() {
            if any_populated && self.local_to_global[shard].is_empty() {
                continue;
            }
            match worker.send(ShardCmd::Batch {
                stream: stream.map(str::to_string),
                events: shared.clone(),
            }) {
                Ok(()) => {
                    if let Some(m) = &self.metrics {
                        m.dispatched(shard, events.len());
                    }
                    dispatched.push(shard);
                }
                Err(e) => {
                    send_err = Some(e);
                    break;
                }
            }
        }
        // Drain exactly one result from every worker that received the
        // batch — even on error — so the persistent result channels never
        // desync: a leftover result would be merged into the *next* batch.
        let mut results: Vec<(usize, CoreResult<Vec<Emission>>)> =
            Vec::with_capacity(dispatched.len());
        for &shard in &dispatched {
            results.push((
                shard,
                self.workers[shard]
                    .batch_rx
                    .recv()
                    .map_err(|_| SaseError::engine("engine shard worker disconnected"))
                    .and_then(|r| r),
            ));
            if let Some(m) = &self.metrics {
                m.drained(shard);
            }
        }
        if let Some(e) = send_err {
            return Err(e);
        }
        let mut merged: Vec<Emission> = Vec::new();
        for (shard, result) in results {
            let table = &self.local_to_global[shard];
            for mut emission in result? {
                for hop in &mut emission.path {
                    hop.0 = table[hop.0 as usize];
                }
                merged.push(emission);
            }
        }
        merged.sort_by(|a, b| a.order_key().cmp(&b.order_key()));
        if let Some(span) = span {
            self.tracer.end(span, merged.len() as u64);
        }
        Ok(merged)
    }

    /// Data-parallel ingest ([`ShardingMode::ByPartitionKey`]): route each
    /// event to a data worker by hashing its claimed partition-key value,
    /// ship the whole batch to the pinned worker, then merge the tagged
    /// emissions on their provenance order keys — byte-identical to one
    /// engine running all the queries.
    fn process_batch_partitioned(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
        seq: u64,
    ) -> CoreResult<Vec<Emission>> {
        let span = self
            .tracer
            .begin(TraceKind::ShardDispatch, seq, events.len() as u64);
        let st: &mut PartitionState = self.partition.as_mut().expect("partition mode");
        if st.poisoned {
            return Err(SaseError::engine(POISONED_MSG));
        }
        if events.is_empty() {
            return Ok(Vec::new());
        }
        let data = st.data;
        let stream_key = stream.map(str::to_ascii_lowercase);
        // Route the batch, enforcing per-stream monotonicity exactly like
        // `Engine` does for input events — a data worker only sees a slice
        // of the stream, so its own clocks cannot catch every regression
        // the single-engine reference would reject. On a regression the
        // valid prefix is still dispatched (the reference has processed
        // those events by the time it errors, and subsequent batches must
        // observe the same state) and the clock error returned afterwards.
        let mut subs: Vec<Vec<Event>> = vec![Vec::new(); data];
        let mut maps: Vec<Vec<u32>> = vec![Vec::new(); data];
        let mut cut = events.len();
        let mut clock_err: Option<SaseError> = None;
        // The whole batch targets one stream, so the clock entry is looked
        // up once and the per-event check is a bare compare. An absent
        // entry starts at 0: timestamps are unsigned, so the first event
        // always passes, exactly like `Engine`'s insert-on-first-sight.
        let route_distributed = stream_key.is_none() && !st.data_l2g.is_empty();
        let clock = st.clocks.entry(stream_key.clone()).or_insert(0);
        for (i, event) in events.iter().enumerate() {
            if event.timestamp() < *clock {
                clock_err = Some(SaseError::engine(format!(
                    "out-of-order event: timestamp {} after {} on stream `{}`",
                    event.timestamp(),
                    clock,
                    stream_key.as_deref().unwrap_or("<default>"),
                )));
                cut = i;
                break;
            }
            *clock = event.timestamp();
            // Distributed queries listen on the default stream only (FROM
            // consumers are pinned), so named-stream events route to the
            // pinned worker alone.
            if !route_distributed {
                continue;
            }
            if let Some(Some(tk)) = st.claims.get(event.type_id().0 as usize) {
                // Claimed accessors are statically resolved, so `key_of`
                // is infallible for events of the claimed type; an event
                // of an unclaimed type routes nowhere (no distributed
                // query reacts to it).
                if let Some(key) = tk.key_of(event) {
                    let mut h = FxHasher::default();
                    key.hash(&mut h);
                    let shard = (h.finish() % data as u64) as usize;
                    subs[shard].push(event.clone());
                    maps[shard].push(i as u32);
                }
            }
        }
        // Dispatch: each data worker gets its slice; the pinned worker
        // gets the whole valid prefix whenever it hosts at least one
        // query. While it hosts none it is skipped entirely — there is
        // nothing it could emit, and duplicating the stream into it would
        // cost a full extra ingest pass. `snapshot()` overlays the router
        // clocks onto the pinned slot, so recovery never depends on the
        // pinned engine having seen every event.
        let mut dispatched: Vec<usize> = Vec::new();
        let mut send_err: Option<SaseError> = None;
        for (w, sub) in subs.iter_mut().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let routed = sub.len();
            match self.workers[w].send(ShardCmd::Batch {
                stream: None,
                events: Arc::new(std::mem::take(sub)),
            }) {
                Ok(()) => {
                    if let Some(m) = &self.metrics {
                        m.dispatched(w, routed);
                    }
                    dispatched.push(w);
                }
                Err(e) => {
                    send_err = Some(e);
                    break;
                }
            }
        }
        if send_err.is_none() && cut > 0 && !st.pinned_l2g.is_empty() {
            match self.workers[data].send(ShardCmd::Batch {
                stream: stream.map(str::to_string),
                events: Arc::new(events[..cut].to_vec()),
            }) {
                Ok(()) => {
                    if let Some(m) = &self.metrics {
                        m.dispatched(data, cut);
                    }
                    dispatched.push(data);
                }
                Err(e) => send_err = Some(e),
            }
        }
        // Drain exactly one result from every worker that received a
        // sub-batch — even on error — so the persistent result channels
        // never desync (see `process_batch_tagged`).
        let mut results: Vec<(usize, CoreResult<Vec<Emission>>)> =
            Vec::with_capacity(dispatched.len());
        for &w in &dispatched {
            results.push((
                w,
                self.workers[w]
                    .batch_rx
                    .recv()
                    .map_err(|_| SaseError::engine("engine shard worker disconnected"))
                    .and_then(|r| r),
            ));
            if let Some(m) = &self.metrics {
                m.drained(w);
            }
        }
        if let Some(e) = send_err {
            return Err(e);
        }
        // Merge. A worker panic latches the deployment poisoned — every
        // subsequent ingest is rejected with the same typed error.
        // Ordinary errors (host functions, clock regressions inside a
        // worker) do not poison: the drain discipline keeps the workers
        // consistent, matching ByQuery behavior. Worker errors take
        // precedence over the router's clock error — workers only saw the
        // pre-regression prefix, so theirs happened earlier in the
        // single-engine order.
        let mut first_err: Option<SaseError> = None;
        let mut merged: Vec<Emission> = Vec::new();
        for (w, result) in results {
            match result {
                Err(e) => {
                    if e.to_string().contains(SHARD_PANIC_MSG) {
                        st.poisoned = true;
                    }
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Ok(emissions) if first_err.is_none() => {
                    if w < data {
                        let map = &maps[w];
                        for mut emission in emissions {
                            emission.input_index = map[emission.input_index as usize];
                            for hop in &mut emission.path {
                                hop.0 = st.data_l2g[hop.0 as usize];
                            }
                            merged.push(emission);
                        }
                    } else {
                        // The pinned worker saw the whole prefix: its
                        // input indices are already global.
                        for mut emission in emissions {
                            for hop in &mut emission.path {
                                hop.0 = st.pinned_l2g[hop.0 as usize];
                            }
                            merged.push(emission);
                        }
                    }
                }
                Ok(_) => {}
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        if let Some(e) = clock_err {
            return Err(e);
        }
        merged.sort_by(|a, b| a.order_key().cmp(&b.order_key()));
        if let Some(span) = span {
            self.tracer.end(span, merged.len() as u64);
        }
        Ok(merged)
    }
}

/// The sharded implementation of the unified processor surface: every
/// method delegates to the inherent method of the same name, so a sharded
/// deployment is a drop-in replacement for a single [`Engine`] behind
/// `dyn EventProcessor` — including post-build registration, per-query
/// sinks, and snapshot/restore (one engine snapshot per shard).
impl EventProcessor for ShardedEngine {
    fn register_with(&mut self, name: &str, src: &str, options: PlannerOptions) -> CoreResult<()> {
        ShardedEngine::register_with(self, name, src, options)
    }

    fn check(&self, src: &str) -> Vec<analyze::Diagnostic> {
        ShardedEngine::check(self, src)
    }

    fn unregister(&mut self, name: &str) -> bool {
        ShardedEngine::unregister(self, name)
    }

    fn process_batch_on(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
    ) -> CoreResult<Vec<ComplexEvent>> {
        ShardedEngine::process_batch_on(self, stream, events)
    }

    fn process_batch_tagged(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
    ) -> CoreResult<Vec<Emission>> {
        ShardedEngine::process_batch_tagged(self, stream, events)
    }

    fn query_names(&self) -> Vec<String> {
        self.names.clone()
    }

    fn stats(&self, name: &str) -> CoreResult<RuntimeStats> {
        ShardedEngine::stats(self, name)
    }

    fn metrics_registry(&self) -> Option<&MetricsRegistry> {
        ShardedEngine::metrics_registry(self)
    }

    fn metrics(&self) -> MetricsSnapshot {
        ShardedEngine::metrics(self)
    }

    fn explain(&self, name: &str) -> CoreResult<String> {
        ShardedEngine::explain(self, name)
    }

    fn query_text(&self, name: &str) -> CoreResult<String> {
        ShardedEngine::query_text(self, name)
    }

    fn add_sink(&mut self, name: &str, sink: Sink) -> CoreResult<()> {
        ShardedEngine::add_sink(self, name, sink)
    }

    fn schemas(&self) -> &SchemaRegistry {
        ShardedEngine::schemas(self)
    }

    fn snapshot(&self) -> SnapshotSet {
        ShardedEngine::snapshot(self)
    }

    fn restore(&mut self, snaps: &SnapshotSet) -> CoreResult<()> {
        ShardedEngine::restore(self, snaps)
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("mode", &self.sharding_mode())
            .field("shards", &self.shard_count())
            .field("queries", &self.names)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Retail-demo stage wiring
// ---------------------------------------------------------------------------

/// Build the cleaning pipeline and engine for the retail demo without the
/// rest of [`crate::SaseSystem`] (the pipelined deployment owns them).
pub fn retail_stages(
    catalog_size: usize,
) -> CoreResult<(SchemaRegistry, CleaningPipeline, Engine)> {
    let (registry, functions, pipeline) = retail_parts(catalog_size)?;
    let engine = Engine::with_functions(registry.clone(), functions);
    Ok((registry, pipeline, engine))
}

/// Like [`retail_stages`], but the engine stage is a
/// [`ShardedEngineBuilder`]: register the standing queries on the builder,
/// `build(n)` it, and hand the result to [`run_pipelined`].
pub fn retail_stages_sharded(
    catalog_size: usize,
) -> CoreResult<(SchemaRegistry, CleaningPipeline, ShardedEngineBuilder)> {
    let (registry, functions, pipeline) = retail_parts(catalog_size)?;
    let builder = ShardedEngineBuilder::with_functions(registry.clone(), functions);
    Ok((registry, pipeline, builder))
}

fn retail_parts(
    catalog_size: usize,
) -> CoreResult<(SchemaRegistry, FunctionRegistry, CleaningPipeline)> {
    use crate::builtins::{register_db_builtins, retail_area_descriptions, seed_area_info};
    use sase_db::Database;
    use sase_stream::{register_reading_schemas, CleaningConfig, StaticOns};

    let cfg = CleaningConfig::retail_demo();
    let registry = SchemaRegistry::new();
    register_reading_schemas(&registry)?;
    let db = Database::new();
    seed_area_info(&db, &retail_area_descriptions())
        .map_err(|e| SaseError::engine(e.to_string()))?;
    let functions = FunctionRegistry::with_stdlib();
    register_db_builtins(&functions, &db).map_err(|e| SaseError::engine(e.to_string()))?;
    let mut ons = StaticOns::new();
    for item in 1..=catalog_size as u64 {
        let (name, category, price) = crate::system::demo_product(item);
        ons.insert(cfg.make_tag(item), name, category, price);
    }
    let pipeline = CleaningPipeline::new(cfg, registry.clone(), Arc::new(ons));
    Ok((registry, functions, pipeline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;
    use sase_core::value::{Value, ValueType};
    use sase_rfid::noise::NoiseModel;
    use sase_rfid::scenario::RetailScenario;
    use sase_rfid::sim::RfidSimulator;
    use sase_stream::CleaningConfig;

    fn reference_detections(scenario: &RetailScenario) -> Vec<String> {
        let mut reference = crate::SaseSystem::retail(NoiseModel::realistic(), 9, 40).unwrap();
        reference.register_demo_queries().unwrap();
        reference.run_scenario(scenario).unwrap();
        reference
            .detections()
            .iter()
            .map(|d| d.to_string())
            .collect()
    }

    #[test]
    fn pipelined_matches_single_threaded() {
        let cfg = CleaningConfig::retail_demo();
        let scenario = RetailScenario::build(&cfg, 42, 4, 2, 1);
        let expect = reference_detections(&scenario);

        // Pipelined deployment over the *same* device stream (same sim
        // seed and noise).
        let (_registry, pipeline, mut engine) = retail_stages(40).unwrap();
        engine
            .register("shoplifting", queries::SHOPLIFTING)
            .unwrap();
        engine
            .register("location_change", queries::LOCATION_CHANGE)
            .unwrap();
        engine
            .register("archive_location", queries::ARCHIVE_LOCATION)
            .unwrap();
        let sim = RfidSimulator::retail_demo(NoiseModel::realistic(), 9);
        let ticks = scripted_ticks(sim, &scenario);
        let run = run_pipelined(ticks, pipeline, engine).unwrap();

        let got: Vec<String> = run.detections.iter().map(|d| d.to_string()).collect();
        assert_eq!(expect, got, "pipelined deployment must agree exactly");
        assert!(run.frames_shipped as u64 >= scenario.duration);
        assert!(run.events_generated > 0);
    }

    #[test]
    fn sharded_pipelined_matches_single_threaded() {
        let cfg = CleaningConfig::retail_demo();
        let scenario = RetailScenario::build(&cfg, 42, 4, 2, 1);
        let expect = reference_detections(&scenario);

        let (_registry, pipeline, mut builder) = retail_stages_sharded(40).unwrap();
        builder
            .register("shoplifting", queries::SHOPLIFTING)
            .unwrap();
        builder
            .register("location_change", queries::LOCATION_CHANGE)
            .unwrap();
        builder
            .register("archive_location", queries::ARCHIVE_LOCATION)
            .unwrap();
        let sharded = builder.build(3).unwrap();
        // location_change and archive_location share the stateful
        // `_updateLocation` built-in, so they are co-located; shoplifting
        // runs on its own shard.
        assert_eq!(
            sharded.shard_of("location_change"),
            sharded.shard_of("archive_location")
        );
        assert_ne!(
            sharded.shard_of("shoplifting"),
            sharded.shard_of("location_change")
        );

        let sim = RfidSimulator::retail_demo(NoiseModel::realistic(), 9);
        let ticks = scripted_ticks(sim, &scenario);
        let run = run_pipelined(ticks, pipeline, sharded).unwrap();
        let got: Vec<String> = run.detections.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            expect, got,
            "sharded deployment must agree with the single-threaded reference byte for byte"
        );
    }

    #[test]
    fn sharded_matches_single_engine_with_derivation_chains() {
        // Synthetic query set with an INTO/FROM chain plus independent
        // queries, compared against one engine running everything.
        let mk_registry = || {
            let reg = sase_core::event::retail_registry();
            reg.register(
                "moves",
                &[("tag", ValueType::Int), ("area", ValueType::Int)],
            )
            .unwrap();
            reg
        };
        let srcs: [(&str, &str); 5] = [
            (
                "producer",
                "EVENT SEQ(SHELF_READING x, SHELF_READING y) \
                 WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId WITHIN 100 \
                 RETURN y.TagId AS tag, y.AreaId AS area INTO Moves",
            ),
            ("mover", "FROM moves EVENT MOVES m RETURN m.tag AS t"),
            ("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag"),
            ("counters", "EVENT COUNTER_READING c RETURN c.TagId AS tag"),
            (
                "pairs",
                "EVENT SEQ(SHELF_READING a, EXIT_READING b) \
                 WHERE a.TagId = b.TagId WITHIN 50 RETURN a.TagId AS tag",
            ),
        ];

        let single_reg = mk_registry();
        let mut single = Engine::new(single_reg.clone());
        for (name, src) in srcs {
            single.register(name, src).unwrap();
        }

        let sharded_reg = mk_registry();
        let mut builder = ShardedEngineBuilder::new(sharded_reg.clone());
        for (name, src) in srcs {
            builder.register(name, src).unwrap();
        }
        let mut sharded = builder.build(4).unwrap();
        assert_eq!(sharded.shard_count(), 4);
        // The INTO chain is co-located.
        assert_eq!(sharded.shard_of("producer"), sharded.shard_of("mover"));

        let mk_events = |reg: &SchemaRegistry| -> Vec<Event> {
            let types = ["SHELF_READING", "COUNTER_READING", "EXIT_READING"];
            (0u64..120)
                .map(|k| {
                    reg.build_event(
                        types[(k % 3) as usize],
                        k + 1,
                        vec![
                            Value::Int((k % 5) as i64),
                            Value::str("p"),
                            Value::Int(1 + (k % 3) as i64),
                        ],
                    )
                    .unwrap()
                })
                .collect()
        };

        let render = |v: &[ComplexEvent]| v.iter().map(|d| d.to_string()).collect::<Vec<_>>();
        // Feed in several batches to exercise cross-batch state.
        let single_events = mk_events(&single_reg);
        let sharded_events = mk_events(&sharded_reg);
        let mut expect = Vec::new();
        let mut got = Vec::new();
        for (se, he) in single_events.chunks(17).zip(sharded_events.chunks(17)) {
            expect.extend(single.process_batch(se).unwrap());
            got.extend(sharded.process_batch(he).unwrap());
        }
        assert!(!expect.is_empty());
        assert_eq!(render(&expect), render(&got));
    }

    #[test]
    fn pipelined_detects_planted_shoplifters() {
        let cfg = CleaningConfig::retail_demo();
        let scenario = RetailScenario::build(&cfg, 7, 3, 2, 0);
        let (_registry, pipeline, mut engine) = retail_stages(40).unwrap();
        engine
            .register("shoplifting", queries::SHOPLIFTING)
            .unwrap();
        let sim = RfidSimulator::retail_demo(NoiseModel::perfect(), 1);
        let run = run_pipelined(scripted_ticks(sim, &scenario), pipeline, engine).unwrap();
        let mut flagged: Vec<i64> = run
            .detections
            .iter()
            .filter_map(|d| d.value("x.TagId").and_then(Value::as_int))
            .collect();
        flagged.sort_unstable();
        flagged.dedup();
        assert_eq!(flagged, scenario.truth.shoplifted);
    }

    #[test]
    fn engine_error_propagates_across_threads() {
        let (_registry, pipeline, mut engine) = retail_stages(4).unwrap();
        engine.functions().register_fn("_boom", Some(1), |_| {
            Err(SaseError::Function {
                name: "_boom".into(),
                message: "injected".into(),
            })
        });
        engine
            .register("q", "EVENT SHELF_READING x RETURN _boom(x.TagId)")
            .unwrap();
        let cfg = CleaningConfig::retail_demo();
        let mut sim = RfidSimulator::retail_demo(NoiseModel::perfect(), 1);
        sim.place_tag(cfg.make_tag(1), 1);
        let ticks: Vec<(Tick, Vec<RawReading>)> = vec![(0, sim.tick())];
        let err = run_pipelined(ticks, pipeline, engine).unwrap_err();
        assert!(err.to_string().contains("injected"));
    }

    #[test]
    fn sharded_error_propagates() {
        let registry = sase_core::event::retail_registry();
        let functions = FunctionRegistry::with_stdlib();
        functions.register_fn("_boom", Some(1), |_| {
            Err(SaseError::Function {
                name: "_boom".into(),
                message: "injected".into(),
            })
        });
        let mut builder = ShardedEngineBuilder::with_functions(registry.clone(), functions);
        builder
            .register("ok", "EVENT EXIT_READING z RETURN z.TagId AS tag")
            .unwrap();
        builder
            .register("bad", "EVENT SHELF_READING x RETURN _boom(x.TagId)")
            .unwrap();
        let mut sharded = builder.build(2).unwrap();
        let e = registry
            .build_event(
                "SHELF_READING",
                1,
                vec![Value::Int(1), Value::str("p"), Value::Int(1)],
            )
            .unwrap();
        let err = sharded.process_batch(&[e]).unwrap_err();
        assert!(err.to_string().contains("injected"));

        // Regression: the failed batch must not leave stale results in any
        // worker's result channel — the next batch merges only its own
        // results, and the deployment stays snapshotable.
        let exit = registry
            .build_event(
                "EXIT_READING",
                2,
                vec![Value::Int(9), Value::str("p"), Value::Int(4)],
            )
            .unwrap();
        let out = sharded.process_batch(&[exit]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value("tag"), Some(&Value::Int(9)));
        assert_eq!(sharded.snapshot().len(), 2);
    }

    #[test]
    fn builder_rejects_duplicate_names() {
        let mut builder = ShardedEngineBuilder::new(sase_core::event::retail_registry());
        builder.register("q", "EVENT SHELF_READING x").unwrap();
        assert!(builder.register("q", "EVENT EXIT_READING x").is_err());
    }

    #[test]
    fn sharded_engine_matches_engine_surface() {
        // Parity regression: unregister, explain, query_text, and
        // per-query sinks — the surfaces the sharded deployment used to
        // silently lack — behave exactly like a single engine's.
        use std::sync::atomic::{AtomicUsize, Ordering};

        let registry = sase_core::event::retail_registry();
        let mut builder = ShardedEngineBuilder::new(registry.clone());
        builder
            .register("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag")
            .unwrap();
        builder
            .register("shelves", "EVENT SHELF_READING x RETURN x.TagId AS tag")
            .unwrap();
        let mut sharded = builder.build(2).unwrap();

        assert!(sharded.explain("exits").unwrap().contains("EXIT_READING"));
        assert!(sharded
            .query_text("shelves")
            .unwrap()
            .contains("SHELF_READING"));
        assert!(sharded.explain("missing").is_err());

        let hits = Arc::new(AtomicUsize::new(0));
        let h2 = hits.clone();
        sharded
            .add_sink(
                "exits",
                Box::new(move |_ce| {
                    h2.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        let exit = registry
            .build_event(
                "EXIT_READING",
                1,
                vec![Value::Int(7), Value::str("p"), Value::Int(4)],
            )
            .unwrap();
        sharded.process_batch(std::slice::from_ref(&exit)).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1, "sink fired on its shard");

        // Post-build registration lands on the least-loaded shard and is
        // fully routable; unregister renumbers the merge tables.
        sharded
            .register("counters", "EVENT COUNTER_READING c RETURN c.TagId AS t")
            .unwrap();
        assert!(sharded
            .register("counters", "EVENT SHELF_READING x")
            .is_err());
        assert!(sharded.unregister("exits"));
        assert!(!sharded.unregister("exits"));
        assert_eq!(sharded.query_names(), ["shelves", "counters"]);
        let counter = registry
            .build_event(
                "COUNTER_READING",
                2,
                vec![Value::Int(7), Value::str("p"), Value::Int(3)],
            )
            .unwrap();
        let out = sharded.process_batch(&[exit, counter]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].query.as_ref(), "counters");
        assert_eq!(sharded.stats("counters").unwrap().matches_emitted, 1);
    }

    #[test]
    fn post_build_register_respects_colocation() {
        // A late consumer of a derived stream must land on its producer's
        // shard; a late query linked to two different shards is rejected.
        let registry = sase_core::event::retail_registry();
        registry
            .register(
                "moves",
                &[("tag", ValueType::Int), ("area", ValueType::Int)],
            )
            .unwrap();
        let mut builder = ShardedEngineBuilder::new(registry.clone());
        builder
            .register(
                "producer",
                "EVENT SEQ(SHELF_READING x, SHELF_READING y) \
                 WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId WITHIN 100 \
                 RETURN y.TagId AS tag, y.AreaId AS area INTO Moves",
            )
            .unwrap();
        builder
            .register("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag")
            .unwrap();
        let mut sharded = builder.build(2).unwrap();
        assert_ne!(sharded.shard_of("producer"), sharded.shard_of("exits"));

        sharded
            .register("mover", "FROM moves EVENT MOVES m RETURN m.tag AS t")
            .unwrap();
        assert_eq!(
            sharded.shard_of("mover"),
            sharded.shard_of("producer"),
            "derived-stream consumer is co-located with its producer"
        );

        // The derived chain actually fires across the worker boundary.
        let mk = |ts: u64, area: i64| {
            registry
                .build_event(
                    "SHELF_READING",
                    ts,
                    vec![Value::Int(1), Value::str("p"), Value::Int(area)],
                )
                .unwrap()
        };
        let out = sharded.process_batch(&[mk(1, 1), mk(2, 2)]).unwrap();
        assert_eq!(out.len(), 2, "producer + mover: {out:?}");

        // A second producer into `moves` must also co-locate.
        sharded
            .register(
                "producer2",
                "EVENT EXIT_READING z RETURN z.TagId AS tag, z.AreaId AS area INTO Moves",
            )
            .unwrap();
        assert_eq!(sharded.shard_of("producer2"), sharded.shard_of("producer"));
    }

    #[test]
    fn by_partition_key_matches_single_engine() {
        // The data-parallel deployment reproduces the single-engine output
        // byte for byte, with distributed and pinned queries mixed.
        let registry = sase_core::event::retail_registry();
        let srcs: [(&str, &str); 3] = [
            (
                "pairs",
                "EVENT SEQ(SHELF_READING a, EXIT_READING b) \
                 WHERE a.TagId = b.TagId WITHIN 50 RETURN a.TagId AS tag",
            ),
            ("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag"),
            (
                "same_shelf",
                "EVENT SEQ(SHELF_READING x, SHELF_READING y) \
                 WHERE [TagId] WITHIN 40 RETURN y.TagId AS tag",
            ),
        ];
        let mut single = Engine::new(registry.clone());
        let mut builder = ShardedEngineBuilder::new(registry.clone());
        builder.set_sharding(ShardingMode::ByPartitionKey);
        for (name, src) in srcs {
            single.register(name, src).unwrap();
            builder.register(name, src).unwrap();
        }
        let mut sharded = builder.build(4).unwrap();
        assert_eq!(sharded.sharding_mode(), ShardingMode::ByPartitionKey);
        assert_eq!(sharded.shard_count(), 5, "4 data workers + 1 pinned");
        // Both SEQ queries distribute on TagId; `exits` has no partition
        // key at all and is pinned.
        assert_eq!(sharded.shard_of("pairs"), None);
        assert_eq!(sharded.shard_of("same_shelf"), None);
        assert_eq!(sharded.shard_of("exits"), Some(4));

        let types = ["SHELF_READING", "COUNTER_READING", "EXIT_READING"];
        let events: Vec<Event> = (0u64..150)
            .map(|k| {
                registry
                    .build_event(
                        types[(k % 3) as usize],
                        k + 1,
                        vec![
                            Value::Int((k % 7) as i64),
                            Value::str("p"),
                            Value::Int(1 + (k % 3) as i64),
                        ],
                    )
                    .unwrap()
            })
            .collect();
        let mut expect = Vec::new();
        let mut got = Vec::new();
        for chunk in events.chunks(13) {
            expect.extend(single.process_batch_tagged(None, chunk).unwrap());
            got.extend(sharded.process_batch_tagged(None, chunk).unwrap());
        }
        assert!(!expect.is_empty());
        let render = |v: &[Emission]| {
            v.iter()
                .map(|e| format!("{}|{}|{:?}|{}", e.input_index, e.depth, e.path, e.output))
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&expect), render(&got));
        // Distributed stats are summed across data workers and agree with
        // the single engine on the exact counters.
        assert_eq!(
            sharded.stats("pairs").unwrap().matches_emitted,
            single.stats("pairs").unwrap().matches_emitted
        );
    }

    #[test]
    fn partitioned_worker_panic_poisons_deployment() {
        // A worker panic mid-batch must surface as a typed error — not a
        // hang or a silent drop — and every subsequent ingest must be
        // rejected deterministically.
        let registry = sase_core::event::retail_registry();
        let functions = FunctionRegistry::with_stdlib();
        functions.register_fn("_detonate", Some(1), |args| {
            if args[0] == Value::Int(13) {
                panic!("injected detonation");
            }
            Ok(args[0].clone())
        });
        let mut builder = ShardedEngineBuilder::with_functions(registry.clone(), functions);
        builder.set_sharding(ShardingMode::ByPartitionKey);
        builder
            .register(
                "pairs",
                "EVENT SEQ(SHELF_READING a, EXIT_READING b) \
                 WHERE a.TagId = b.TagId WITHIN 50 RETURN a.TagId AS tag",
            )
            .unwrap();
        builder
            .register(
                "boomy",
                "EVENT SHELF_READING x RETURN _detonate(x.TagId) AS v",
            )
            .unwrap();
        let mut sharded = builder.build(2).unwrap();
        // The host-function caller is pinned; the equivalence query
        // distributes.
        assert_eq!(sharded.shard_of("pairs"), None);
        assert_eq!(sharded.shard_of("boomy"), Some(2));

        let mk = |ts: u64, tag: i64| {
            registry
                .build_event(
                    "SHELF_READING",
                    ts,
                    vec![Value::Int(tag), Value::str("p"), Value::Int(1)],
                )
                .unwrap()
        };
        assert_eq!(sharded.process_batch(&[mk(1, 1)]).unwrap().len(), 1);

        let err = sharded.process_batch(&[mk(2, 13)]).unwrap_err();
        assert!(
            err.to_string().contains("panicked"),
            "panic must surface as a typed error: {err}"
        );

        // Deterministic rejection from here on: identical message, twice.
        let e1 = sharded.process_batch(&[mk(3, 1)]).unwrap_err().to_string();
        let e2 = sharded.process_batch(&[mk(4, 2)]).unwrap_err().to_string();
        assert!(e1.contains("poisoned"), "got: {e1}");
        assert_eq!(e1, e2, "rejection must be deterministic");
        // The workers themselves survive (panic isolation): the poisoned
        // deployment is still snapshotable for post-mortem inspection.
        assert_eq!(sharded.snapshot().len(), 3);
    }

    #[test]
    fn partitioned_error_does_not_poison() {
        // An ordinary engine error (failing host function) propagates but
        // leaves the deployment usable — parity with ByQuery behavior.
        let registry = sase_core::event::retail_registry();
        let functions = FunctionRegistry::with_stdlib();
        functions.register_fn("_faulty", Some(1), |args| {
            if args[0] == Value::Int(13) {
                return Err(SaseError::Function {
                    name: "_faulty".into(),
                    message: "injected".into(),
                });
            }
            Ok(args[0].clone())
        });
        let mut builder = ShardedEngineBuilder::with_functions(registry.clone(), functions);
        builder.set_sharding(ShardingMode::ByPartitionKey);
        builder
            .register("q", "EVENT SHELF_READING x RETURN _faulty(x.TagId) AS v")
            .unwrap();
        let mut sharded = builder.build(2).unwrap();
        let mk = |ts: u64, tag: i64| {
            registry
                .build_event(
                    "SHELF_READING",
                    ts,
                    vec![Value::Int(tag), Value::str("p"), Value::Int(1)],
                )
                .unwrap()
        };
        let err = sharded.process_batch(&[mk(1, 13)]).unwrap_err();
        assert!(err.to_string().contains("injected"));
        let out = sharded.process_batch(&[mk(2, 5)]).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn partitioned_router_rejects_out_of_order_like_single_engine() {
        // The router-level clocks reproduce the single engine's
        // out-of-order rejection even when the regressing event would have
        // hashed to a worker that never saw the earlier timestamp.
        let registry = sase_core::event::retail_registry();
        let mk_engine = || {
            let mut e = Engine::new(registry.clone());
            e.register(
                "pairs",
                "EVENT SEQ(SHELF_READING a, EXIT_READING b) \
                 WHERE a.TagId = b.TagId WITHIN 50 RETURN a.TagId AS tag",
            )
            .unwrap();
            e
        };
        let mut single = mk_engine();
        let mut builder = ShardedEngineBuilder::new(registry.clone());
        builder.set_sharding(ShardingMode::ByPartitionKey);
        builder
            .register(
                "pairs",
                "EVENT SEQ(SHELF_READING a, EXIT_READING b) \
                 WHERE a.TagId = b.TagId WITHIN 50 RETURN a.TagId AS tag",
            )
            .unwrap();
        let mut sharded = builder.build(4).unwrap();
        let mk = |ts: u64, tag: i64| {
            registry
                .build_event(
                    "SHELF_READING",
                    ts,
                    vec![Value::Int(tag), Value::str("p"), Value::Int(1)],
                )
                .unwrap()
        };
        let batch = vec![mk(10, 1), mk(5, 2)];
        let e1 = single.process_batch(&batch).unwrap_err().to_string();
        let e2 = sharded.process_batch(&batch).unwrap_err().to_string();
        assert!(e1.contains("out-of-order"), "got: {e1}");
        assert_eq!(e1, e2, "clock rejection must match the single engine");
        // Not poisoned: the next in-order batch is accepted by both.
        assert!(single.process_batch(&[mk(11, 3)]).is_ok());
        assert!(sharded.process_batch(&[mk(11, 3)]).is_ok());
    }

    #[test]
    fn post_build_register_rejects_cross_shard_colocation() {
        // Two queries pinned to different shards by distinct stateful host
        // functions; a late query calling both cannot be placed anywhere.
        let registry = sase_core::event::retail_registry();
        let functions = FunctionRegistry::with_stdlib();
        functions.register_fn("_fa", Some(1), |args| Ok(args[0].clone()));
        functions.register_fn("_fb", Some(1), |args| Ok(args[0].clone()));
        let mut builder = ShardedEngineBuilder::with_functions(registry, functions);
        builder
            .register("qa", "EVENT SHELF_READING x RETURN _fa(x.TagId) AS a")
            .unwrap();
        builder
            .register("qb", "EVENT EXIT_READING z RETURN _fb(z.TagId) AS b")
            .unwrap();
        let mut sharded = builder.build(2).unwrap();
        assert_ne!(sharded.shard_of("qa"), sharded.shard_of("qb"));

        let err = sharded
            .register(
                "both",
                "EVENT COUNTER_READING c RETURN _fa(c.TagId) AS a, _fb(c.TagId) AS b",
            )
            .unwrap_err();
        assert!(
            err.to_string().contains("co-located"),
            "placement conflict must be explicit: {err}"
        );
        // The failed registration left no trace.
        assert_eq!(sharded.query_names(), ["qa", "qb"]);
        // A single-function late query still places on its pinned shard.
        sharded
            .register("more_a", "EVENT COUNTER_READING c RETURN _fa(c.TagId) AS a")
            .unwrap();
        assert_eq!(sharded.shard_of("more_a"), sharded.shard_of("qa"));
    }
}
