//! The paper's database built-in functions, bound to the event database.
//!
//! §2.1.1: "our language provides a set of built-in functions (all starting
//! with `_`) for common database operations". Q1 calls
//! `_retrieveLocation(z.AreaId)`; Q2 calls `_updateLocation(y.TagId,
//! y.AreaId, y.Timestamp)`; the containment archiving rule uses
//! `_addToContainer` / `_removeFromContainer`.
//!
//! Each function is a closure capturing a [`Database`] handle, registered
//! on the engine's [`FunctionRegistry`]; the event processor invokes them
//! exactly once per emitted composite event, which is what makes the
//! side-effecting update functions safe as archiving rules.

use sase_core::error::{Result as CoreResult, SaseError};
use sase_core::functions::FunctionRegistry;
use sase_core::value::{Value, ValueType};

use sase_db::{Database, TrackAndTrace};

/// Name of the area-description table backing `_retrieveLocation`.
pub const AREA_INFO_TABLE: &str = "area_info";

fn arg_int(name: &str, args: &[Value], i: usize) -> CoreResult<i64> {
    args.get(i)
        .and_then(|v| v.as_int())
        .ok_or_else(|| SaseError::Function {
            name: name.to_string(),
            message: format!("argument {i} must be an integer"),
        })
}

fn db_err(name: &str, e: sase_db::DbError) -> SaseError {
    SaseError::Function {
        name: name.to_string(),
        message: e.to_string(),
    }
}

/// Create (if needed) and seed the `area_info` table with a description per
/// area. Existing descriptions are replaced.
pub fn seed_area_info(db: &Database, areas: &[(i64, &str)]) -> sase_db::Result<()> {
    if !db.table_names().contains(&AREA_INFO_TABLE.to_string()) {
        db.create_table(
            AREA_INFO_TABLE,
            &[("area", ValueType::Int), ("description", ValueType::Str)],
        )?;
        db.create_index(AREA_INFO_TABLE, "area")?;
    }
    for (area, desc) in areas {
        db.execute(&format!(
            "DELETE FROM {AREA_INFO_TABLE} WHERE area = {area}"
        ))?;
        db.execute(&format!(
            "INSERT INTO {AREA_INFO_TABLE} VALUES ({area}, '{}')",
            desc.replace('\'', "''")
        ))?;
    }
    Ok(())
}

/// The retail demo's area descriptions (Figure 2), including the paper's
/// example phrase for the exit.
pub fn retail_area_descriptions() -> Vec<(i64, &'static str)> {
    vec![
        (1, "shelf 1 (grocery aisle)"),
        (2, "shelf 2 (household aisle)"),
        (3, "the check-out counter"),
        (4, "the leftmost door on the south side of the store"),
        (100, "the truck loading dock"),
        (101, "the unloading zone"),
        (102, "the warehouse backroom"),
    ]
}

/// Register every database built-in on a function registry:
///
/// | function | effect |
/// |---|---|
/// | `_retrieveLocation(area)` | textual description of an area (Q1) |
/// | `_updateLocation(tag, area, ts)` | Location Update rule (Q2) |
/// | `_addToContainer(item, container, ts)` | Containment Update rule |
/// | `_removeFromContainer(item, ts)` | Containment Update rule |
/// | `_currentLocation(item)` | current area of an item, `-1` if unknown |
/// | `_movementHistory(item)` | rendered §4 track-and-trace history |
pub fn register_db_builtins(functions: &FunctionRegistry, db: &Database) -> sase_db::Result<()> {
    let tnt = TrackAndTrace::open(db.clone())?;

    {
        let db = db.clone();
        functions.register_fn("_retrieveLocation", Some(1), move |args| {
            let area = arg_int("_retrieveLocation", args, 0)?;
            let rs = db
                .query(&format!(
                    "SELECT description FROM {AREA_INFO_TABLE} WHERE area = {area}"
                ))
                .map_err(|e| db_err("_retrieveLocation", e))?;
            match rs.rows.first() {
                Some(row) => Ok(row[0].clone()),
                None => Ok(Value::str(format!("area {area}"))),
            }
        });
    }
    {
        let tnt = tnt.clone();
        functions.register_fn("_updateLocation", Some(3), move |args| {
            let tag = arg_int("_updateLocation", args, 0)?;
            let area = arg_int("_updateLocation", args, 1)?;
            let ts = arg_int("_updateLocation", args, 2)?;
            let changed = tnt
                .locations()
                .update_location(tag, area, ts)
                .map_err(|e| db_err("_updateLocation", e))?;
            Ok(Value::Bool(changed))
        });
    }
    {
        let tnt = tnt.clone();
        functions.register_fn("_addToContainer", Some(3), move |args| {
            let item = arg_int("_addToContainer", args, 0)?;
            let container = arg_int("_addToContainer", args, 1)?;
            let ts = arg_int("_addToContainer", args, 2)?;
            tnt.containments()
                .add_to_container(item, container, ts)
                .map_err(|e| db_err("_addToContainer", e))?;
            Ok(Value::Bool(true))
        });
    }
    {
        let tnt = tnt.clone();
        functions.register_fn("_removeFromContainer", Some(2), move |args| {
            let item = arg_int("_removeFromContainer", args, 0)?;
            let ts = arg_int("_removeFromContainer", args, 1)?;
            let removed = tnt
                .containments()
                .remove_from_container(item, ts)
                .map_err(|e| db_err("_removeFromContainer", e))?;
            Ok(Value::Bool(removed))
        });
    }
    {
        let tnt = tnt.clone();
        functions.register_fn("_currentLocation", Some(1), move |args| {
            let item = arg_int("_currentLocation", args, 0)?;
            let stay = tnt
                .current_location(item)
                .map_err(|e| db_err("_currentLocation", e))?;
            Ok(Value::Int(stay.map(|s| s.area).unwrap_or(-1)))
        });
    }
    {
        let tnt = tnt.clone();
        functions.register_fn("_movementHistory", Some(1), move |args| {
            let item = arg_int("_movementHistory", args, 0)?;
            let text = tnt
                .render_history(item)
                .map_err(|e| db_err("_movementHistory", e))?;
            Ok(Value::str(text))
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FunctionRegistry, Database) {
        let db = Database::new();
        let functions = FunctionRegistry::with_stdlib();
        seed_area_info(&db, &retail_area_descriptions()).unwrap();
        register_db_builtins(&functions, &db).unwrap();
        (functions, db)
    }

    #[test]
    fn retrieve_location_returns_paper_phrase() {
        let (f, _db) = setup();
        let v = f
            .resolve("_retrieveLocation")
            .unwrap()
            .call(&[Value::Int(4)])
            .unwrap();
        assert_eq!(
            v,
            Value::str("the leftmost door on the south side of the store")
        );
        // Unknown areas degrade gracefully.
        let v = f
            .resolve("_retrieveLocation")
            .unwrap()
            .call(&[Value::Int(77)])
            .unwrap();
        assert_eq!(v, Value::str("area 77"));
    }

    #[test]
    fn update_location_round_trip() {
        let (f, db) = setup();
        let upd = f.resolve("_updateLocation").unwrap();
        assert_eq!(
            upd.call(&[Value::Int(7), Value::Int(1), Value::Int(10)])
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            upd.call(&[Value::Int(7), Value::Int(1), Value::Int(12)])
                .unwrap(),
            Value::Bool(false), // same area: no change
        );
        assert_eq!(
            upd.call(&[Value::Int(7), Value::Int(4), Value::Int(20)])
                .unwrap(),
            Value::Bool(true)
        );
        let cur = f.resolve("_currentLocation").unwrap();
        assert_eq!(cur.call(&[Value::Int(7)]).unwrap(), Value::Int(4));
        assert_eq!(cur.call(&[Value::Int(99)]).unwrap(), Value::Int(-1));
        let tnt = TrackAndTrace::open(db).unwrap();
        assert_eq!(tnt.locations().history(7).unwrap().len(), 2);
    }

    #[test]
    fn containment_functions() {
        let (f, _db) = setup();
        let add = f.resolve("_addToContainer").unwrap();
        let rm = f.resolve("_removeFromContainer").unwrap();
        add.call(&[Value::Int(1), Value::Int(1000), Value::Int(5)])
            .unwrap();
        assert_eq!(
            rm.call(&[Value::Int(1), Value::Int(9)]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            rm.call(&[Value::Int(1), Value::Int(10)]).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn movement_history_renders() {
        let (f, _db) = setup();
        f.resolve("_updateLocation")
            .unwrap()
            .call(&[Value::Int(3), Value::Int(100), Value::Int(2)])
            .unwrap();
        let v = f
            .resolve("_movementHistory")
            .unwrap()
            .call(&[Value::Int(3)])
            .unwrap();
        assert!(v.as_str().unwrap().contains("in area 100"));
    }

    #[test]
    fn bad_arguments_error() {
        let (f, _db) = setup();
        assert!(f
            .resolve("_retrieveLocation")
            .unwrap()
            .call(&[Value::str("x")])
            .is_err());
    }

    #[test]
    fn seeding_is_idempotent() {
        let (_f, db) = setup();
        seed_area_info(&db, &[(4, "new exit description")]).unwrap();
        let rs = db
            .query(&format!(
                "SELECT description FROM {AREA_INFO_TABLE} WHERE area = 4"
            ))
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::str("new exit description"));
    }
}
