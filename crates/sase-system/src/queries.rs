//! Canonical query texts for the demonstration scenario (§4).

/// Q1 from §2.1.1, verbatim (ASCII conjunction): shoplifting detection with
/// a database lookup for the exit's textual description.
pub const SHOPLIFTING: &str = "\
EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)
WHERE x.TagId = y.TagId AND x.TagId = z.TagId
WITHIN 12 hours
RETURN x.TagId, x.ProductName, z.AreaId, _retrieveLocation(z.AreaId)";

/// Q2 from §2.1.1, verbatim modulo attribute spelling (the paper writes
/// `x.id`/`x.area_id` in Q2 and `TagId`/`AreaId` in Q1; one schema serves
/// both): the Location Update transformation rule for archiving.
pub const LOCATION_CHANGE: &str = "\
EVENT SEQ(SHELF_READING x, SHELF_READING y)
WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId
WITHIN 1 hour
RETURN _updateLocation(y.TagId, y.AreaId, y.Timestamp)";

/// The complete Location Update archiving rule: *any* reading anywhere
/// updates the item's location ( `_updateLocation` is a no-op when the
/// area is unchanged, so firing per reading is safe). Q2 above demonstrates
/// the SEQ-based formulation; this one also captures an item's very first
/// observation.
pub const ARCHIVE_LOCATION: &str = "\
EVENT ANY(SHELF_READING, COUNTER_READING, EXIT_READING, LOADING_READING, \
UNLOADING_READING) x
RETURN _updateLocation(x.TagId, x.AreaId, x.Timestamp)";

/// Misplaced-inventory query for a product family whose home shelf is
/// shelf `home`: a shelf reading of that product in any other shelf area.
/// The detection triggers a movement-history lookup (§4: "the detection of
/// such an event triggers an Event Database lookup for the movement history
/// of the item").
pub fn misplaced_inventory(product: &str, home: i64) -> String {
    format!(
        "EVENT SHELF_READING x\n\
         WHERE x.ProductName = '{product}' AND x.AreaId != {home}\n\
         RETURN x.TagId, x.ProductName, x.AreaId, _movementHistory(x.TagId)"
    )
}

#[cfg(test)]
mod tests {
    use sase_core::lang::parse_query;

    #[test]
    fn canonical_queries_parse() {
        for src in [
            super::SHOPLIFTING,
            super::LOCATION_CHANGE,
            super::ARCHIVE_LOCATION,
        ] {
            parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
        parse_query(&super::misplaced_inventory("soap", 1)).unwrap();
    }
}
