//! The assembled SASE system (Figure 1): RFID devices → Cleaning and
//! Association → Complex Event Processor → results + Event Database.

use std::sync::Arc;

use sase_core::engine::Engine;
use sase_core::error::{Result as CoreResult, SaseError};
use sase_core::event::{Event, SchemaRegistry};
use sase_core::functions::FunctionRegistry;
use sase_core::output::ComplexEvent;
use sase_core::processor::EventProcessor;
use sase_core::value::ValueType;

use sase_db::{Database, TrackAndTrace};
use sase_rfid::noise::NoiseModel;
use sase_rfid::scenario::RetailScenario;
use sase_rfid::sim::RfidSimulator;
use sase_rfid::warehouse::WarehouseTrace;
use sase_stream::config::CleaningConfig;
use sase_stream::event_gen::{register_reading_schemas, StaticOns};
use sase_stream::pipeline::{CleaningPipeline, PipelineStats};
use sase_stream::reading::Tick;

use crate::builtins::{register_db_builtins, retail_area_descriptions, seed_area_info};

/// Everything produced by one system tick.
#[derive(Debug, Default)]
pub struct TickResult {
    /// Events that left the cleaning layer this tick.
    pub events: Vec<Event>,
    /// Composite events emitted by continuous queries this tick.
    pub detections: Vec<ComplexEvent>,
}

/// Product names the demo catalog cycles through.
const PRODUCT_NAMES: [&str; 8] = [
    "milk",
    "soap",
    "bread",
    "razor",
    "cereal",
    "coffee",
    "batteries",
    "shampoo",
];

/// The demo catalog entry for an item id: `(name, category, price cents)`.
/// Shared by the single-threaded and pipelined deployments so their ONS
/// contents are identical.
pub(crate) fn demo_product(item: u64) -> (&'static str, &'static str, i64) {
    let name = PRODUCT_NAMES[(item as usize - 1) % PRODUCT_NAMES.len()];
    let category = if item % 2 == 0 {
        "household"
    } else {
        "grocery"
    };
    let price = 99 + (item as i64 % 40) * 25;
    (name, category, price)
}

/// The fully wired system: simulator, cleaning pipeline, engine, database.
///
/// The complex-event-processor stage is held behind the unified
/// [`EventProcessor`] surface, so a single [`Engine`] (the default) and
/// any other deployment shape are interchangeable without touching the
/// tick path.
pub struct SaseSystem {
    cfg: CleaningConfig,
    registry: SchemaRegistry,
    /// Kept so [`SaseSystem::reset_engine`] can rebuild a fresh engine
    /// sharing the same host functions.
    functions: FunctionRegistry,
    db: Database,
    tnt: TrackAndTrace,
    engine: Box<dyn EventProcessor>,
    pipeline: CleaningPipeline,
    sim: RfidSimulator,
    /// Tap of recent cleaned events for the UI window (bounded).
    cleaning_tap: Vec<Event>,
    /// All detections so far, for the "Message Results" window.
    detections: Vec<ComplexEvent>,
}

impl SaseSystem {
    /// Assemble the retail demo deployment (Figure 2): four readers over
    /// two shelves, a counter, and an exit; a product catalog of
    /// `catalog_size` tagged items; the paper's built-in DB functions
    /// registered and the `area_info` table seeded.
    pub fn retail(noise: NoiseModel, seed: u64, catalog_size: usize) -> CoreResult<Self> {
        let cfg = CleaningConfig::retail_demo();
        let registry = SchemaRegistry::new();
        register_reading_schemas(&registry)?;

        let db = Database::new();
        seed_area_info(&db, &retail_area_descriptions()).map_err(db_err)?;
        db.create_table(
            "product",
            &[
                ("item", ValueType::Int),
                ("name", ValueType::Str),
                ("category", ValueType::Str),
                ("price_cents", ValueType::Int),
            ],
        )
        .map_err(db_err)?;
        db.create_index("product", "item").map_err(db_err)?;

        // Catalog: both in the simulated ONS and queryable in the DB.
        let mut ons = StaticOns::new();
        for item in 1..=catalog_size as u64 {
            let (name, category, price) = demo_product(item);
            ons.insert(cfg.make_tag(item), name, category, price);
            db.execute(&format!(
                "INSERT INTO product VALUES ({item}, '{name}', '{category}', {price})"
            ))
            .map_err(db_err)?;
        }

        let functions = FunctionRegistry::with_stdlib();
        register_db_builtins(&functions, &db).map_err(db_err)?;
        let engine = Engine::with_functions(registry.clone(), functions.clone());
        let tnt = TrackAndTrace::open(db.clone()).map_err(db_err)?;
        let pipeline = CleaningPipeline::new(cfg.clone(), registry.clone(), Arc::new(ons));
        let sim = RfidSimulator::retail_demo(noise, seed);

        Ok(SaseSystem {
            cfg,
            registry,
            functions,
            db,
            tnt,
            engine: Box::new(engine),
            pipeline,
            sim,
            cleaning_tap: Vec::new(),
            detections: Vec::new(),
        })
    }

    /// The cleaning configuration.
    pub fn config(&self) -> &CleaningConfig {
        &self.cfg
    }

    /// The schema registry.
    pub fn schemas(&self) -> &SchemaRegistry {
        &self.registry
    }

    /// The event database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Track-and-trace query interface.
    pub fn track_and_trace(&self) -> &TrackAndTrace {
        &self.tnt
    }

    /// The continuous-query processor (read-only surface).
    pub fn processor(&self) -> &dyn EventProcessor {
        self.engine.as_ref()
    }

    /// The continuous-query processor: register queries, attach sinks, or
    /// ingest out-of-band batches through the unified
    /// [`EventProcessor`] surface.
    pub fn processor_mut(&mut self) -> &mut dyn EventProcessor {
        self.engine.as_mut()
    }

    /// Replace the processor with a fresh, empty single engine sharing the
    /// same schema and function registries — the "crash" half of
    /// engine-boundary recovery: every registered query, all NFA runtime
    /// state, and the stream clocks are gone, while the upstream layers
    /// (devices, cleaning, database) keep running. Recovery re-registers
    /// queries and restores a checkpoint (see
    /// [`crate::durable::DurableSystem`]).
    pub fn reset_engine(&mut self) {
        self.engine = Box::new(Engine::with_functions(
            self.registry.clone(),
            self.functions.clone(),
        ));
    }

    /// The device simulator.
    pub fn simulator(&mut self) -> &mut RfidSimulator {
        &mut self.sim
    }

    /// Cleaning-layer statistics.
    pub fn cleaning_stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    /// Recent cleaned events (the "Cleaning and Association Layer Output"
    /// window).
    pub fn cleaning_tap(&self) -> &[Event] {
        &self.cleaning_tap
    }

    /// All detections so far (the "Message Results" window).
    pub fn detections(&self) -> &[ComplexEvent] {
        &self.detections
    }

    /// Detections of one query.
    pub fn detections_for(&self, query: &str) -> Vec<&ComplexEvent> {
        self.detections
            .iter()
            .filter(|d| d.query.as_ref() == query)
            .collect()
    }

    /// Register a continuous query (SASE text) under a name.
    pub fn register_query(&mut self, name: &str, src: &str) -> CoreResult<()> {
        self.engine.register(name, src)
    }

    /// Register the demo's standing queries: shoplifting (Q1), the Q2
    /// location-change rule, and the complete location archiving rule.
    pub fn register_demo_queries(&mut self) -> CoreResult<()> {
        self.engine
            .register("shoplifting", crate::queries::SHOPLIFTING)?;
        self.engine
            .register("location_change", crate::queries::LOCATION_CHANGE)?;
        self.engine
            .register("archive_location", crate::queries::ARCHIVE_LOCATION)?;
        Ok(())
    }

    /// Register a misplaced-inventory monitor for a product family.
    pub fn register_misplaced_query(
        &mut self,
        name: &str,
        product: &str,
        home_shelf: i64,
    ) -> CoreResult<()> {
        self.engine.register(
            name,
            &crate::queries::misplaced_inventory(product, home_shelf),
        )
    }

    /// Archive detections produced outside the tick path (the durable
    /// wrapper's retried batches) so the "Message Results" window stays
    /// complete.
    pub(crate) fn archive_detections(&mut self, detections: &[ComplexEvent]) {
        self.detections.extend(detections.iter().cloned());
    }

    /// Advance the device and cleaning layers by one scan cycle *without*
    /// feeding the engine (the cycle's events are dropped).
    ///
    /// This is the upstream fast-forward for full-process recovery: the
    /// simulator and the cleaning layers (smoothing windows, dedup
    /// history, event-generation clock) are deterministic, so re-driving
    /// them to the crash tick reproduces their in-flight state exactly —
    /// after which live ticks continue the logical-time stream where the
    /// dead process left it. The engine's own state comes from the
    /// checkpoint + log instead (see `crate::durable::DurableSystem`).
    pub fn advance_upstream(&mut self, scenario: Option<&RetailScenario>) -> CoreResult<()> {
        let tick: Tick = self.sim.now();
        if let Some(s) = scenario {
            s.apply_tick(&mut self.sim, tick);
        }
        let readings = self.sim.tick();
        self.pipeline.process_tick(tick, &readings)?;
        Ok(())
    }

    /// Capacity of the bounded cleaned-event tap backing the UI window.
    const TAP_CAPACITY: usize = 256;

    /// Run one scan cycle: simulator → cleaning → event processor.
    pub fn tick(&mut self, scenario: Option<&RetailScenario>) -> CoreResult<TickResult> {
        self.tick_observed(scenario, &mut |_, _| Ok(()))
    }

    /// Like [`SaseSystem::tick`], but `observer` sees the tick's cleaned
    /// events *before* the engine ingests them. The durable deployment
    /// ([`crate::durable::DurableSystem`]) uses this as its write-ahead
    /// hook: the batch is appended to the event log first, so a crash
    /// between logging and processing replays the batch instead of losing
    /// it. An observer error aborts the tick before the engine sees the
    /// batch.
    pub fn tick_observed(
        &mut self,
        scenario: Option<&RetailScenario>,
        observer: &mut dyn FnMut(Tick, &[Event]) -> CoreResult<()>,
    ) -> CoreResult<TickResult> {
        let tick: Tick = self.sim.now();
        if let Some(s) = scenario {
            s.apply_tick(&mut self.sim, tick);
        }
        let readings = self.sim.tick();
        let events = self.pipeline.process_tick(tick, &readings)?;
        observer(tick, &events)?;
        // One batched ingest per tick instead of per-event engine calls.
        let detections = self.engine.process_batch(&events)?;
        // Bounded UI tap: make room first so only surviving events are
        // cloned (events are cheap `Arc` handles, but still).
        if events.len() >= Self::TAP_CAPACITY {
            self.cleaning_tap.clear();
            self.cleaning_tap
                .extend(events[events.len() - Self::TAP_CAPACITY..].iter().cloned());
        } else {
            let overflow =
                (self.cleaning_tap.len() + events.len()).saturating_sub(Self::TAP_CAPACITY);
            if overflow > 0 {
                self.cleaning_tap.drain(..overflow);
            }
            self.cleaning_tap.extend(events.iter().cloned());
        }
        // Archive one copy; the tick's own result keeps the originals.
        self.detections.extend(detections.iter().cloned());
        Ok(TickResult { events, detections })
    }

    /// Play a scripted scenario to completion; returns every detection.
    pub fn run_scenario(&mut self, scenario: &RetailScenario) -> CoreResult<Vec<ComplexEvent>> {
        let mut all = Vec::new();
        let start = self.sim.now();
        while self.sim.now() < start + scenario.duration {
            let r = self.tick(Some(scenario))?;
            all.extend(r.detections);
        }
        Ok(all)
    }

    /// Capture the Figure 3 UI windows, with full query texts in the
    /// "Present Queries" window.
    pub fn ui_report(&self) -> crate::report::UiReport {
        let mut report = crate::report::UiReport::capture(self, &self.engine.query_names());
        for (name, text) in report.present_queries.iter_mut() {
            if let Ok(t) = self.engine.query_text(name) {
                *text = t;
            }
        }
        report
    }

    /// Pre-populate the event database from a warehouse trace (§4's
    /// track-and-trace data set).
    pub fn prepopulate_warehouse(&mut self, trace: &WarehouseTrace) -> CoreResult<()> {
        for m in &trace.movements {
            self.tnt
                .locations()
                .update_location(m.item, m.area, m.ts as i64)
                .map_err(db_err)?;
        }
        for c in &trace.containments {
            if c.added {
                self.tnt
                    .containments()
                    .add_to_container(c.item, c.container, c.ts as i64)
                    .map_err(db_err)?;
            } else {
                self.tnt
                    .containments()
                    .remove_from_container(c.item, c.ts as i64)
                    .map_err(db_err)?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for SaseSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SaseSystem")
            .field("detections", &self.detections.len())
            .field("cleaning", &self.pipeline.stats())
            .finish()
    }
}

fn db_err(e: sase_db::DbError) -> SaseError {
    SaseError::engine(format!("event database: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shoplifting_detected_end_to_end_with_perfect_devices() {
        let mut sys = SaseSystem::retail(NoiseModel::perfect(), 7, 20).unwrap();
        sys.register_demo_queries().unwrap();
        let scenario = RetailScenario::build(sys.config(), 3, 2, 1, 0);
        sys.run_scenario(&scenario).unwrap();

        let hits = sys.detections_for("shoplifting");
        let mut flagged: Vec<i64> = hits
            .iter()
            .map(|d| d.value("x.TagId").unwrap().as_int().unwrap())
            .collect();
        flagged.sort_unstable();
        flagged.dedup();
        assert_eq!(
            flagged, scenario.truth.shoplifted,
            "exactly the planted thief"
        );
        // The DB lookup joined the paper's exit description.
        let desc = hits[0]
            .value("_retrieveLocation(z.AreaId)")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(desc.contains("door"));
    }

    #[test]
    fn archiving_rules_keep_database_current() {
        let mut sys = SaseSystem::retail(NoiseModel::perfect(), 9, 20).unwrap();
        sys.register_demo_queries().unwrap();
        let scenario = RetailScenario::build(sys.config(), 4, 1, 0, 1);
        sys.run_scenario(&scenario).unwrap();

        // The misplaced item's location history ends on a shelf; the
        // archive rule must have recorded each hop.
        let item = scenario.truth.misplaced[0];
        let hist = sys.track_and_trace().locations().history(item).unwrap();
        assert!(hist.len() >= 2, "history: {hist:?}");
        let cur = sys
            .track_and_trace()
            .current_location(item)
            .unwrap()
            .unwrap();
        assert!(cur.area == 1 || cur.area == 2);
    }

    #[test]
    fn misplaced_inventory_query_fires_with_history_lookup() {
        let mut sys = SaseSystem::retail(NoiseModel::perfect(), 11, 20).unwrap();
        sys.register_demo_queries().unwrap();
        // Home shelf of every product in this tiny demo is shelf 1.
        sys.register_misplaced_query("misplaced", "milk", 1)
            .unwrap();

        // Manually script: item 1 ("milk") placed on shelf 2 (wrong).
        let cfg = sys.config().clone();
        sys.simulator().place_tag(cfg.make_tag(1), 2);
        for _ in 0..3 {
            sys.tick(None).unwrap();
        }
        let hits = sys.detections_for("misplaced");
        assert!(!hits.is_empty());
        let history = hits[0]
            .value("_movementHistory(x.TagId)")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(history.contains("movement history"));
    }

    #[test]
    fn warehouse_prepopulation_supports_track_and_trace() {
        let mut sys = SaseSystem::retail(NoiseModel::perfect(), 1, 10).unwrap();
        let trace = sase_rfid::warehouse::generate(5, 12, 3);
        sys.prepopulate_warehouse(&trace).unwrap();
        for &item in &trace.items {
            let cur = sys.track_and_trace().current_location(item).unwrap();
            assert!(cur.is_some(), "item {item} has a current location");
            let hist = sys.track_and_trace().movement_history(item).unwrap();
            assert!(hist.len() >= 4);
        }
    }

    #[test]
    fn noisy_devices_still_detect_with_cleaning() {
        let mut sys = SaseSystem::retail(NoiseModel::realistic(), 21, 30).unwrap();
        sys.register_demo_queries().unwrap();
        let scenario = RetailScenario::build(sys.config(), 5, 4, 2, 0);
        sys.run_scenario(&scenario).unwrap();
        let mut flagged: Vec<i64> = sys
            .detections_for("shoplifting")
            .iter()
            .map(|d| d.value("x.TagId").unwrap().as_int().unwrap())
            .collect();
        flagged.sort_unstable();
        flagged.dedup();
        // With realistic (not harsh) noise, the cleaning stack recovers
        // every planted shoplifter and no honest shopper is flagged.
        for thief in &scenario.truth.shoplifted {
            assert!(flagged.contains(thief), "missed shoplifter {thief}");
        }
        for honest in &scenario.truth.honest {
            assert!(!flagged.contains(honest), "false accusation of {honest}");
        }
        let stats = sys.cleaning_stats();
        assert!(stats.anomaly.dropped_spurious > 0 || stats.anomaly.dropped_truncated > 0);
        assert!(stats.dedup.suppressed > 0);
    }
}
