//! Durable deployments: write-ahead event logging, engine checkpoints,
//! crash recovery, and full-speed historical replay.
//!
//! The durability boundary is the *complex event processor*: the cleaned
//! event stream is the canonical record (appended to a
//! [`sase_store::EventLog`] before the engine sees each batch), and engine
//! state is checkpointed as [`EngineSnapshot`]s referencing a log
//! position. On restart, [`DurableEngine::recover`] loads the newest valid
//! checkpoint, restores the engines, and replays only the log tail —
//! resuming exactly where the crashed process left off, provably: replay
//! re-emits byte-for-byte the composite events the crashed process emitted
//! after its last checkpoint (the recovery tests assert this against an
//! uninterrupted reference run).
//!
//! Delivery semantics are the standard WAL contract: inputs are durable
//! once [`EventLog::commit`] returns (`sync_each_batch` commits on every
//! ingest); emissions after the last checkpoint are re-emitted during
//! replay (at-least-once), and deterministically identical to the
//! originals, so downstream consumers dedup by log position.
//!
//! Two wrappers share the machinery:
//!
//! * [`DurableEngine`] wraps any [`EventProcessor`] — a single [`Engine`](sase_core::engine::Engine),
//!   a [`ShardedEngine`](crate::concurrent::ShardedEngine) (whose checkpoint stores one snapshot per shard,
//!   atomically in one file), or any other deployment implementing the
//!   trait. [`DurableEngine`] itself implements [`EventProcessor`], so
//!   durability and sharding are orthogonal, composable decorators.
//! * [`DurableSystem`] wraps the full [`SaseSystem`]: each tick's cleaned
//!   events are logged before ingest, and the engine can be crashed and
//!   recovered in place while the device and cleaning layers keep running
//!   (the deployment shape of Figure 1, where those layers are separate
//!   processes).

use std::path::{Path, PathBuf};

use sase_core::engine::{Emission, Sink};
use sase_core::error::{Result as CoreResult, SaseError};
use sase_core::event::{Event, SchemaRegistry};
use sase_core::output::ComplexEvent;
use sase_core::plan::PlannerOptions;
use sase_core::processor::EventProcessor;
use sase_core::runtime::RuntimeStats;
use sase_core::snapshot::{EngineSnapshot, SnapshotSet};
use sase_core::time::Timestamp;

use sase_store::{
    load_latest_checkpoint, prune_checkpoints, write_checkpoint, Checkpoint, EventLog, LogOptions,
    StoreError,
};

use crate::system::{SaseSystem, TickResult};

/// Errors from the durable layer: either the store failed (I/O,
/// corruption) or the engine rejected replayed state/events.
#[derive(Debug)]
pub enum DurableError {
    /// Log or checkpoint failure.
    Store(StoreError),
    /// Engine failure during ingest, restore, or replay.
    Core(SaseError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Store(e) => write!(f, "{e}"),
            DurableError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}

impl From<SaseError> for DurableError {
    fn from(e: SaseError) -> Self {
        DurableError::Core(e)
    }
}

/// Result alias for durable operations.
pub type Result<T> = std::result::Result<T, DurableError>;

/// Tuning knobs for durable deployments.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Event-log segment size (see [`LogOptions::segment_bytes`]).
    pub segment_bytes: u64,
    /// Commit (flush + fsync) the log on every ingested batch. Off, the
    /// host owns the commit cadence via [`DurableEngine::commit`] —
    /// higher throughput, wider crash window.
    pub sync_each_batch: bool,
    /// Checkpoints retained on disk (older ones are pruned; the newest
    /// valid one wins at recovery, corrupt ones fall back).
    pub keep_checkpoints: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            segment_bytes: 4 << 20,
            sync_each_batch: true,
            keep_checkpoints: 4,
        }
    }
}

impl DurableOptions {
    fn log(&self) -> LogOptions {
        LogOptions {
            segment_bytes: self.segment_bytes,
        }
    }
}

/// The durable layer's registry handles, resolved once per deployment:
/// checkpoint and recovery-progress counters (the WAL's own
/// `sase_wal_*` series are resolved by [`sase_store::WalMetrics`] on
/// the same registry). Recovery counters advance record-by-record
/// during replay, so a scrape mid-recovery shows live progress.
#[derive(Debug, Clone)]
struct DurableMetrics {
    registry: sase_obs::MetricsRegistry,
    /// Checkpoints written (`sase_checkpoints_total`).
    checkpoints: sase_obs::Counter,
    /// Recovery/replay runs completed (`sase_recovery_runs_total`).
    recovery_runs: sase_obs::Counter,
    /// Log records replayed (`sase_recovery_records_replayed_total`).
    recovery_records: sase_obs::Counter,
    /// Events replayed (`sase_recovery_events_replayed_total`).
    recovery_events: sase_obs::Counter,
    /// Engine rejections during replay
    /// (`sase_recovery_replay_errors_total`).
    recovery_errors: sase_obs::Counter,
}

impl DurableMetrics {
    fn new() -> Self {
        let registry = sase_obs::MetricsRegistry::new();
        DurableMetrics {
            checkpoints: registry.counter("sase_checkpoints_total", &[]),
            recovery_runs: registry.counter("sase_recovery_runs_total", &[]),
            recovery_records: registry.counter("sase_recovery_records_replayed_total", &[]),
            recovery_events: registry.counter("sase_recovery_events_replayed_total", &[]),
            recovery_errors: registry.counter("sase_recovery_replay_errors_total", &[]),
            registry,
        }
    }
}

/// What recovery did: which checkpoint it started from, how much log tail
/// it replayed, and the emissions that replay produced (byte-identical
/// re-emissions of whatever the crashed process emitted after the
/// checkpoint, plus anything it logged but never processed).
#[derive(Debug)]
pub struct RecoveryReport {
    /// Log position of the checkpoint recovery started from; `None` when
    /// no valid checkpoint existed and the whole log was replayed.
    pub checkpoint_seq: Option<u64>,
    /// Log records replayed.
    pub records_replayed: u64,
    /// Events replayed.
    pub events_replayed: u64,
    /// Composite events emitted during replay, in emission order.
    pub emissions: Vec<ComplexEvent>,
    /// Records the engine rejected during replay, as `(seq, error)`.
    /// Engine rejections are deterministic — the live run rejected the
    /// same record with the same error — so they are reported, not fatal:
    /// a poisoned record can never make a deployment unrecoverable.
    pub replay_errors: Vec<(u64, String)>,
    /// Checkpoint files skipped because they failed validation.
    pub corrupt_checkpoints: Vec<PathBuf>,
}

/// Result of a historical replay run ([`DurableEngine::replay_range`]).
#[derive(Debug)]
pub struct ReplayRun {
    /// Records re-driven.
    pub records: u64,
    /// Events re-driven.
    pub events: u64,
    /// Composite events emitted, in emission order.
    pub emissions: Vec<ComplexEvent>,
    /// Records the engine rejected, as `(seq, error)` (see
    /// [`RecoveryReport::replay_errors`]).
    pub errors: Vec<(u64, String)>,
}

/// Drive log records through an ingest function, accumulating emissions.
///
/// Store-level failures (I/O, corruption) abort; *engine* rejections are
/// collected per record and replay continues — the rejection is
/// deterministic (the live path rejected the identical record identically,
/// leaving the engine usable), so surfacing it as data instead of an error
/// keeps every committed record after a poisoned one reachable.
fn drive_replay(
    records: sase_store::LogIter,
    mut ingest: impl FnMut(&[Event]) -> CoreResult<Vec<ComplexEvent>>,
) -> Result<ReplayRun> {
    let mut run = ReplayRun {
        records: 0,
        events: 0,
        emissions: Vec::new(),
        errors: Vec::new(),
    };
    for record in records {
        let record = record?;
        run.records += 1;
        run.events += record.events.len() as u64;
        match ingest(&record.events) {
            Ok(out) => run.emissions.extend(out),
            Err(e) => run.errors.push((record.seq, e.to_string())),
        }
    }
    Ok(run)
}

/// Reject recovery when a checkpoint references log records that no
/// longer exist (e.g. a segment was deleted or truncated below the
/// checkpoint): replaying from thin air would silently lose state.
fn ensure_log_covers(dir: &Path, log: &EventLog, replay_from: u64) -> Result<()> {
    if replay_from > log.next_seq() {
        return Err(StoreError::Corrupt {
            path: dir.to_path_buf(),
            offset: 0,
            detail: format!(
                "checkpoint references log seq {replay_from} but the log ends at {}; \
                 committed records are missing",
                log.next_seq()
            ),
        }
        .into());
    }
    Ok(())
}

/// Commit the log, write an atomic checkpoint of `engines` at the current
/// log position, prune old checkpoints; returns the checkpoint position.
fn write_engine_checkpoint(
    dir: &Path,
    keep: usize,
    log: &mut EventLog,
    engines: Vec<EngineSnapshot>,
) -> Result<u64> {
    log.commit()?;
    let seq = log.next_seq();
    write_checkpoint(
        dir,
        &Checkpoint {
            replay_from_seq: seq,
            engines,
        },
    )?;
    prune_checkpoints(dir, keep)?;
    Ok(seq)
}

/// Register every derived (`INTO`) stream type recorded in a checkpoint's
/// snapshot set on a fresh registry — step 1 of the restore protocol,
/// before queries consuming those streams can be re-registered.
pub fn preregister_derived(registry: &SchemaRegistry, snaps: &SnapshotSet) -> CoreResult<()> {
    snaps.preregister_derived(registry)
}

/// An engine deployment behind a write-ahead event log: the durability
/// decorator over any [`EventProcessor`] (a single [`Engine`](sase_core::engine::Engine), a
/// [`ShardedEngine`](crate::concurrent::ShardedEngine), …). It implements [`EventProcessor`] itself, so
/// `DurableEngine<ShardedEngine>` composes durability and sharding
/// without either knowing about the other.
///
/// Ingest order is log-first: the batch is appended (and, by default,
/// committed) before the engine processes it, so a crash at any point
/// between loses nothing — recovery replays the batch. The log covers the
/// default input stream, the one the system deployments feed; ingesting
/// on a named stream through the [`EventProcessor`] surface is rejected
/// (the log records carry no stream name, so replay could not route them).
pub struct DurableEngine<E: EventProcessor> {
    dir: PathBuf,
    opts: DurableOptions,
    log: EventLog,
    engine: E,
    metrics: DurableMetrics,
    tracer: sase_obs::Tracer,
}

impl<E: EventProcessor> DurableEngine<E> {
    /// Stand up a *new* durable deployment in `dir` around a freshly
    /// configured engine. Fails if `dir` already holds log records or
    /// checkpoints — recovering an existing deployment must go through
    /// [`DurableEngine::recover`], silently restarting over history would
    /// desynchronize engine state from the log.
    pub fn create(dir: impl Into<PathBuf>, engine: E, opts: DurableOptions) -> Result<Self> {
        let dir = dir.into();
        let metrics = DurableMetrics::new();
        let mut log = EventLog::open(&dir, opts.log())?;
        log.set_metrics(sase_store::WalMetrics::new(&metrics.registry));
        if log.next_seq() > 0 {
            return Err(StoreError::InvalidArgument(format!(
                "{} already holds {} log records; use DurableEngine::recover",
                dir.display(),
                log.next_seq()
            ))
            .into());
        }
        if !sase_store::list_checkpoints(&dir)?.is_empty() {
            return Err(StoreError::InvalidArgument(format!(
                "{} already holds checkpoints; use DurableEngine::recover",
                dir.display()
            ))
            .into());
        }
        Ok(DurableEngine {
            dir,
            opts,
            log,
            engine,
            metrics,
            tracer: sase_obs::Tracer::disabled(),
        })
    }

    /// Recover a deployment from `dir`: load the newest valid checkpoint,
    /// build the engine (the `make_engine` callback receives the
    /// checkpoint's snapshots so it can [`preregister_derived`] before
    /// re-registering the same queries in the same order), restore the
    /// state, and replay the log tail.
    pub fn recover(
        dir: impl Into<PathBuf>,
        opts: DurableOptions,
        make_engine: impl FnOnce(Option<&SnapshotSet>) -> CoreResult<E>,
    ) -> Result<(Self, RecoveryReport)> {
        let dir = dir.into();
        let (ckpt, corrupt_checkpoints) = load_latest_checkpoint(&dir)?;
        // Move the snapshots out of the checkpoint (they can be large —
        // every stack and buffer of every engine) instead of cloning.
        let (ckpt_seq, snaps) = match ckpt {
            Some(c) => (
                Some(c.replay_from_seq),
                Some(SnapshotSet { engines: c.engines }),
            ),
            None => (None, None),
        };
        let mut engine = make_engine(snaps.as_ref())?;
        let replay_from = match &snaps {
            Some(s) => {
                engine.restore(s)?;
                ckpt_seq.expect("snapshot implies a checkpoint")
            }
            None => 0,
        };
        let metrics = DurableMetrics::new();
        let mut log = EventLog::open(&dir, opts.log())?;
        log.set_metrics(sase_store::WalMetrics::new(&metrics.registry));
        ensure_log_covers(&dir, &log, replay_from)?;
        let registry = engine.schemas().clone();
        let records = log.replay_from(&registry, replay_from)?;
        // Progress counters advance per record, so a concurrent metrics
        // scrape (the registry handle is shareable) sees replay advance.
        let m = &metrics;
        let run = drive_replay(records, |events| {
            m.recovery_records.inc();
            m.recovery_events.add(events.len() as u64);
            engine.process_batch(events)
        })?;
        m.recovery_errors.add(run.errors.len() as u64);
        m.recovery_runs.inc();
        let report = RecoveryReport {
            checkpoint_seq: ckpt_seq,
            records_replayed: run.records,
            events_replayed: run.events,
            emissions: run.emissions,
            replay_errors: run.errors,
            corrupt_checkpoints,
        };
        Ok((
            DurableEngine {
                dir,
                opts,
                log,
                engine,
                metrics,
                tracer: sase_obs::Tracer::disabled(),
            },
            report,
        ))
    }

    /// Install a lifecycle tracer (WAL-commit, checkpoint, and replay
    /// spans). To trace the wrapped engine's batch/query spans too, set
    /// a tracer on it via [`DurableEngine::engine_mut`] (or build it
    /// traced before wrapping).
    pub fn set_tracer(&mut self, tracer: sase_obs::Tracer) {
        self.tracer = tracer;
    }

    /// The durable layer's metrics registry (`sase_wal_*`,
    /// `sase_checkpoints_total`, `sase_recovery_*` series). Always
    /// enabled: WAL instrumentation cost is noise next to the I/O it
    /// measures.
    pub fn metrics_registry(&self) -> &sase_obs::MetricsRegistry {
        &self.metrics.registry
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the wrapped engine (e.g. to attach sinks).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// The underlying event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The deployment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Log, then process, one batch of events at `tick` (a regressing
    /// tick is clamped up to the log's last tick, so the WAL never
    /// rejects a batch the engine would accept). With `sync_each_batch`
    /// the batch is durable before the engine sees it; otherwise call
    /// [`DurableEngine::commit`] at your own cadence.
    ///
    /// If the *engine* rejects the batch (a [`DurableError::Core`]), the
    /// batch stays logged — the rejection is deterministic, so replay
    /// reports the same rejection for that record
    /// ([`RecoveryReport::replay_errors`]) and recovery proceeds past it.
    pub fn ingest(&mut self, tick: Timestamp, events: &[Event]) -> Result<Vec<ComplexEvent>> {
        // Clamp to the log's last tick: the WAL tick is a replay-range
        // index (events carry their own timestamps), and the trait
        // surface stamps event-timestamp ticks — mixing the two clocks
        // must never make the log reject an otherwise valid batch.
        let tick = tick.max(self.log.last_tick().unwrap_or(0));
        self.log.append(tick, events)?;
        if self.opts.sync_each_batch {
            self.traced_commit()?;
        }
        Ok(self.engine.process_batch(events)?)
    }

    /// Make every ingested batch durable (one fsync).
    pub fn commit(&mut self) -> Result<()> {
        self.traced_commit()
    }

    /// Commit under a WAL-commit trace span (id = last appended seq).
    fn traced_commit(&mut self) -> Result<()> {
        let span = self.tracer.begin(
            sase_obs::TraceKind::WalCommit,
            self.log.next_seq().saturating_sub(1),
            self.log.uncommitted(),
        );
        let result = self.log.commit();
        if let Some(span) = span {
            self.tracer.end(span, result.is_ok() as u64);
        }
        Ok(result?)
    }

    /// Write an atomic checkpoint of the engine state referencing the
    /// current log position, then prune old checkpoints. Returns the
    /// checkpoint's log position.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let span = self
            .tracer
            .begin(sase_obs::TraceKind::Checkpoint, self.log.next_seq(), 0);
        let result = write_engine_checkpoint(
            &self.dir,
            self.opts.keep_checkpoints,
            &mut self.log,
            self.engine.snapshot().engines,
        );
        if result.is_ok() {
            self.metrics.checkpoints.inc();
        }
        if let Some(span) = span {
            self.tracer.end(span, result.is_ok() as u64);
        }
        result
    }

    /// Replay mode: re-drive the logged tick range `[min_tick, max_tick]`
    /// at full speed through a *separate* engine (typically a fresh one
    /// with analytical queries), without touching this deployment's live
    /// engine state.
    pub fn replay_range<R: EventProcessor>(
        &mut self,
        engine: &mut R,
        min_tick: Timestamp,
        max_tick: Timestamp,
    ) -> Result<ReplayRun> {
        let registry = engine.schemas().clone();
        let span = self
            .tracer
            .begin(sase_obs::TraceKind::Recovery, min_tick, 0);
        let m = &self.metrics;
        let records = self.log.replay_ticks(&registry, min_tick, max_tick)?;
        let run = drive_replay(records, |events| {
            m.recovery_records.inc();
            m.recovery_events.add(events.len() as u64);
            engine.process_batch(events)
        });
        if let Ok(run) = &run {
            m.recovery_errors.add(run.errors.len() as u64);
            m.recovery_runs.inc();
        }
        if let Some(span) = span {
            self.tracer
                .end(span, run.as_ref().map(|r| r.records).unwrap_or(0));
        }
        run
    }
}

impl<E: EventProcessor> std::fmt::Debug for DurableEngine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableEngine")
            .field("dir", &self.dir)
            .field("log", &self.log)
            .finish()
    }
}

/// The durability decorator on the unified processor surface: query
/// management, inspection, sinks, and state pass through to the wrapped
/// deployment; ingest is write-ahead logged first (the WAL tick is the
/// batch's first event timestamp — use [`DurableEngine::ingest`] for an
/// explicit tick). Store failures surface as engine errors here; the
/// inherent methods keep the typed [`DurableError`].
///
/// Queries registered through this surface are, like all queries, *code*
/// rather than logged state: recovery re-registers them via the
/// [`DurableEngine::recover`] callback.
impl<E: EventProcessor> EventProcessor for DurableEngine<E> {
    fn register_with(&mut self, name: &str, src: &str, options: PlannerOptions) -> CoreResult<()> {
        self.engine.register_with(name, src, options)
    }

    fn check(&self, src: &str) -> Vec<sase_core::analyze::Diagnostic> {
        self.engine.check(src)
    }

    fn unregister(&mut self, name: &str) -> bool {
        self.engine.unregister(name)
    }

    fn process_batch_on(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
    ) -> CoreResult<Vec<ComplexEvent>> {
        self.log_for_trait(stream, events)?;
        self.engine.process_batch_on(None, events)
    }

    fn process_batch_tagged(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
    ) -> CoreResult<Vec<Emission>> {
        self.log_for_trait(stream, events)?;
        self.engine.process_batch_tagged(None, events)
    }

    fn query_names(&self) -> Vec<String> {
        self.engine.query_names()
    }

    fn stats(&self, name: &str) -> CoreResult<RuntimeStats> {
        self.engine.stats(name)
    }

    fn metrics_registry(&self) -> Option<&sase_obs::MetricsRegistry> {
        Some(&self.metrics.registry)
    }

    fn metrics(&self) -> sase_obs::MetricsSnapshot {
        // The wrapped deployment's full view (its registry, worker
        // merges, per-query series) plus this layer's WAL / checkpoint /
        // recovery series.
        let mut snap = self.engine.metrics();
        snap.merge(&self.metrics.registry.snapshot());
        snap
    }

    fn explain(&self, name: &str) -> CoreResult<String> {
        self.engine.explain(name)
    }

    fn query_text(&self, name: &str) -> CoreResult<String> {
        self.engine.query_text(name)
    }

    fn add_sink(&mut self, name: &str, sink: Sink) -> CoreResult<()> {
        self.engine.add_sink(name, sink)
    }

    fn schemas(&self) -> &SchemaRegistry {
        self.engine.schemas()
    }

    fn snapshot(&self) -> SnapshotSet {
        self.engine.snapshot()
    }

    fn restore(&mut self, snaps: &SnapshotSet) -> CoreResult<()> {
        self.engine.restore(snaps)
    }
}

impl<E: EventProcessor> DurableEngine<E> {
    /// The trait-surface write-ahead step: reject named streams (log
    /// records carry no stream name, so they could not replay), then
    /// append with the batch's first event timestamp as the WAL tick —
    /// clamped to the log's last tick so interleaving this surface with
    /// the explicit-tick [`DurableEngine::ingest`] (whose ticks may be a
    /// different logical clock) can never make the log reject appends.
    fn log_for_trait(&mut self, stream: Option<&str>, events: &[Event]) -> CoreResult<()> {
        if let Some(s) = stream {
            return Err(SaseError::engine(format!(
                "durable deployments log only the default input stream, not `{s}`; \
                 ingest through the default stream"
            )));
        }
        let Some(first) = events.first() else {
            return Ok(());
        };
        let tick = first.timestamp().max(self.log.last_tick().unwrap_or(0));
        self.log
            .append(tick, events)
            .map_err(|e| SaseError::engine(format!("event log: {e}")))?;
        if self.opts.sync_each_batch {
            self.traced_commit()
                .map_err(|e| SaseError::engine(format!("event log: {e}")))?;
        }
        Ok(())
    }
}

/// The full retail system with a durable event processor: every tick's
/// cleaned events are write-ahead logged, the engine checkpoints on
/// demand, and an engine crash recovers in place while the device and
/// cleaning layers keep running (they are separate components in the
/// paper's deployment; their in-flight state is upstream of the
/// durability boundary).
pub struct DurableSystem {
    sys: SaseSystem,
    dir: PathBuf,
    opts: DurableOptions,
    log: EventLog,
    /// A tick's cleaned events whose WAL append failed: the simulator has
    /// already advanced past them, so they are parked here and retried at
    /// the start of the next [`DurableSystem::tick`] instead of being
    /// dropped.
    pending: Option<(Timestamp, Vec<Event>)>,
    metrics: DurableMetrics,
    tracer: sase_obs::Tracer,
}

impl DurableSystem {
    /// Wrap a freshly built [`SaseSystem`] (no ticks run yet) with a new
    /// durable deployment in `dir`.
    pub fn create(
        dir: impl Into<PathBuf>,
        sys: SaseSystem,
        opts: DurableOptions,
    ) -> Result<DurableSystem> {
        let dir = dir.into();
        let metrics = DurableMetrics::new();
        let mut log = EventLog::open(&dir, opts.log())?;
        log.set_metrics(sase_store::WalMetrics::new(&metrics.registry));
        if log.next_seq() > 0 || !sase_store::list_checkpoints(&dir)?.is_empty() {
            return Err(StoreError::InvalidArgument(format!(
                "{} already holds a durable deployment; recover the engine instead",
                dir.display()
            ))
            .into());
        }
        Ok(DurableSystem {
            sys,
            dir,
            opts,
            log,
            pending: None,
            metrics,
            tracer: sase_obs::Tracer::disabled(),
        })
    }

    /// Reattach a freshly built [`SaseSystem`] (new process, no ticks run
    /// yet) to an *existing* deployment in `dir`: re-register queries via
    /// `register` (same queries, same order as the checkpointed run),
    /// restore the newest valid checkpoint, and replay the log tail.
    ///
    /// The engine resumes exactly; the device and cleaning layers are the
    /// host's to resume (they are upstream of the durability boundary).
    /// With the deterministic simulator, calling
    /// [`SaseSystem::advance_upstream`] once per tick up to the crash
    /// point reproduces both the device clock and the cleaning layers'
    /// in-flight state (smoothing windows, dedup history, the
    /// event-generation logical clock), after which [`DurableSystem::tick`]
    /// continues the logical-time stream exactly where the dead process
    /// left it.
    pub fn recover(
        dir: impl Into<PathBuf>,
        sys: SaseSystem,
        opts: DurableOptions,
        register: impl FnOnce(&mut SaseSystem) -> CoreResult<()>,
    ) -> Result<(DurableSystem, RecoveryReport)> {
        let dir = dir.into();
        let metrics = DurableMetrics::new();
        let mut log = EventLog::open(&dir, opts.log())?;
        log.set_metrics(sase_store::WalMetrics::new(&metrics.registry));
        let mut durable = DurableSystem {
            sys,
            dir,
            opts,
            log,
            pending: None,
            metrics,
            tracer: sase_obs::Tracer::disabled(),
        };
        let report = durable.recover_engine(register)?;
        Ok((durable, report))
    }

    /// Install a lifecycle tracer (WAL-commit, checkpoint, and recovery
    /// spans).
    pub fn set_tracer(&mut self, tracer: sase_obs::Tracer) {
        self.tracer = tracer;
    }

    /// The durable layer's metrics registry (`sase_wal_*`,
    /// `sase_checkpoints_total`, `sase_recovery_*` series).
    pub fn metrics_registry(&self) -> &sase_obs::MetricsRegistry {
        &self.metrics.registry
    }

    /// A typed metrics view of the whole deployment: the processor's
    /// series plus this layer's WAL / checkpoint / recovery series.
    pub fn metrics(&self) -> sase_obs::MetricsSnapshot {
        let mut snap = self.sys.processor().metrics();
        snap.merge(&self.metrics.registry.snapshot());
        snap
    }

    /// The wrapped system.
    pub fn system(&self) -> &SaseSystem {
        &self.sys
    }

    /// Mutable access to the wrapped system (register queries here).
    pub fn system_mut(&mut self) -> &mut SaseSystem {
        &mut self.sys
    }

    /// The underlying event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Make every logged tick durable (one fsync) — the host's commit
    /// cadence when `sync_each_batch` is off.
    pub fn commit(&mut self) -> Result<()> {
        Ok(self.log.commit()?)
    }

    /// Run one scan cycle, write-ahead logging the cleaned events before
    /// the engine ingests them. Log failures surface as
    /// [`DurableError::Store`] with their store typing intact; the cycle's
    /// events are parked and retried (log first, then process) at the next
    /// call, so a transient write failure delays them without losing them.
    pub fn tick(
        &mut self,
        scenario: Option<&sase_rfid::scenario::RetailScenario>,
    ) -> Result<TickResult> {
        // Retry a previously failed append first: its events are older
        // than this cycle's, so log-and-process order is preserved.
        let mut carried = Vec::new();
        if let Some((tick, events)) = self.pending.take() {
            if let Err(e) = Self::log_batch(&mut self.log, self.opts.sync_each_batch, tick, &events)
            {
                self.pending = Some((tick, events));
                return Err(e.into());
            }
            let detections = self.sys.processor_mut().process_batch(&events)?;
            self.sys.archive_detections(&detections);
            carried = detections;
        }

        let log = &mut self.log;
        let sync = self.opts.sync_each_batch;
        // The observer channel only carries `SaseError`; stash the typed
        // store error (and the unlogged batch) on the side.
        let mut store_err: Option<(StoreError, Timestamp, Vec<Event>)> = None;
        let result = self.sys.tick_observed(scenario, &mut |tick, events| {
            Self::log_batch(log, sync, tick, events).map_err(|e| {
                let wrapped = SaseError::engine(format!("event log: {e}"));
                store_err = Some((e, tick, events.to_vec()));
                wrapped
            })
        });
        match result {
            Ok(mut r) => {
                if !carried.is_empty() {
                    carried.extend(r.detections);
                    r.detections = carried;
                }
                Ok(r)
            }
            Err(e) => Err(match store_err {
                Some((s, tick, events)) => {
                    self.pending = Some((tick, events));
                    DurableError::Store(s)
                }
                None => DurableError::Core(e),
            }),
        }
    }

    fn log_batch(
        log: &mut EventLog,
        sync: bool,
        tick: Timestamp,
        events: &[Event],
    ) -> sase_store::Result<()> {
        log.append(tick, events)?;
        if sync {
            log.commit()?;
        }
        Ok(())
    }

    /// Checkpoint the engine against the current log position.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let span = self
            .tracer
            .begin(sase_obs::TraceKind::Checkpoint, self.log.next_seq(), 0);
        let result = write_engine_checkpoint(
            &self.dir,
            self.opts.keep_checkpoints,
            &mut self.log,
            self.sys.processor().snapshot().engines,
        );
        if result.is_ok() {
            self.metrics.checkpoints.inc();
        }
        if let Some(span) = span {
            self.tracer.end(span, result.is_ok() as u64);
        }
        result
    }

    /// Simulate an engine crash: all queries, runtime state, and stream
    /// clocks are dropped (the upstream layers keep running). Follow with
    /// [`DurableSystem::recover_engine`].
    pub fn crash_engine(&mut self) {
        self.sys.reset_engine();
    }

    /// Recover the engine: re-register queries via `register` (same
    /// queries, same order as the checkpointed run — derived stream types
    /// are preregistered first), restore the newest valid checkpoint, and
    /// replay the log tail. Replayed emissions are returned in the report,
    /// not appended to the system's detection archive (in a real restart
    /// the archive starts empty; in-place the live copies are already
    /// there).
    pub fn recover_engine(
        &mut self,
        register: impl FnOnce(&mut SaseSystem) -> CoreResult<()>,
    ) -> Result<RecoveryReport> {
        self.sys.reset_engine();
        let (ckpt, corrupt_checkpoints) = load_latest_checkpoint(&self.dir)?;
        // Move the snapshots out of the checkpoint instead of cloning.
        let (ckpt_seq, snaps) = match ckpt {
            Some(c) => (
                Some(c.replay_from_seq),
                Some(SnapshotSet { engines: c.engines }),
            ),
            None => (None, None),
        };
        if let Some(s) = &snaps {
            preregister_derived(self.sys.schemas(), s)?;
        }
        register(&mut self.sys)?;
        let replay_from = match &snaps {
            Some(s) => {
                self.sys.processor_mut().restore(s)?;
                ckpt_seq.expect("snapshot implies a checkpoint")
            }
            None => 0,
        };
        ensure_log_covers(&self.dir, &self.log, replay_from)?;
        let registry = self.sys.schemas().clone();
        let span = self
            .tracer
            .begin(sase_obs::TraceKind::Recovery, replay_from, 0);
        let records = self.log.replay_from(&registry, replay_from)?;
        let sys = &mut self.sys;
        let m = &self.metrics;
        let run = drive_replay(records, |events| {
            m.recovery_records.inc();
            m.recovery_events.add(events.len() as u64);
            sys.processor_mut().process_batch(events)
        })?;
        m.recovery_errors.add(run.errors.len() as u64);
        m.recovery_runs.inc();
        if let Some(span) = span {
            self.tracer.end(span, run.records);
        }
        Ok(RecoveryReport {
            checkpoint_seq: ckpt_seq,
            records_replayed: run.records,
            events_replayed: run.events,
            emissions: run.emissions,
            replay_errors: run.errors,
            corrupt_checkpoints,
        })
    }
}

impl std::fmt::Debug for DurableSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSystem")
            .field("dir", &self.dir)
            .field("log", &self.log)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sase_core::engine::Engine;
    use sase_core::event::retail_registry;
    use sase_core::value::Value;

    const Q: &str = "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
                     WHERE x.TagId = z.TagId WITHIN 100 RETURN x.TagId AS tag";

    fn tmp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sase-durable-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn engine_with_q() -> Engine {
        let mut e = Engine::new(retail_registry());
        e.register("q", Q).unwrap();
        e
    }

    fn ev(reg: &SchemaRegistry, ty: &str, ts: u64, tag: i64) -> Event {
        reg.build_event(
            ty,
            ts,
            vec![Value::Int(tag), Value::str("p"), Value::Int(1)],
        )
        .unwrap()
    }

    #[test]
    fn create_ingest_checkpoint_recover_resumes() {
        let dir = tmp_dir("basic");
        let mut durable =
            DurableEngine::create(&dir, engine_with_q(), DurableOptions::default()).unwrap();
        let reg = durable.engine().schemas().clone();

        // Two shelf readings land in stacks; checkpoint; one more batch
        // after the checkpoint stays only in the log.
        durable
            .ingest(0, &[ev(&reg, "SHELF_READING", 1, 7)])
            .unwrap();
        let seq = durable.checkpoint().unwrap();
        assert_eq!(seq, 1);
        let out = durable
            .ingest(1, &[ev(&reg, "SHELF_READING", 2, 8)])
            .unwrap();
        assert!(out.is_empty());
        drop(durable);

        let (mut recovered, report) =
            DurableEngine::recover(&dir, DurableOptions::default(), |snaps| {
                let reg = retail_registry();
                if let Some(snaps) = snaps {
                    preregister_derived(&reg, snaps)?;
                }
                let mut e = Engine::new(reg);
                e.register("q", Q)?;
                Ok(e)
            })
            .unwrap();
        assert_eq!(report.checkpoint_seq, Some(1));
        assert_eq!(report.records_replayed, 1);
        assert_eq!(report.events_replayed, 1);
        assert!(report.emissions.is_empty());
        assert!(report.corrupt_checkpoints.is_empty());

        // Both pending shelf readings must pair with the exit.
        let reg = recovered.engine().schemas().clone();
        let out = recovered
            .ingest(
                2,
                &[
                    ev(&reg, "EXIT_READING", 3, 7),
                    ev(&reg, "EXIT_READING", 3, 8),
                ],
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_without_checkpoint_replays_everything() {
        let dir = tmp_dir("nockpt");
        let mut durable =
            DurableEngine::create(&dir, engine_with_q(), DurableOptions::default()).unwrap();
        let reg = durable.engine().schemas().clone();
        let live = durable
            .ingest(
                0,
                &[
                    ev(&reg, "SHELF_READING", 1, 7),
                    ev(&reg, "EXIT_READING", 2, 7),
                ],
            )
            .unwrap();
        assert_eq!(live.len(), 1);
        drop(durable);

        let (_, report) = DurableEngine::recover(&dir, DurableOptions::default(), |_| {
            let mut e = Engine::new(retail_registry());
            e.register("q", Q)?;
            Ok(e)
        })
        .unwrap();
        assert_eq!(report.checkpoint_seq, None);
        assert_eq!(report.records_replayed, 1);
        // Deterministic replay: the match is re-emitted byte-for-byte.
        assert_eq!(report.emissions.len(), 1);
        assert_eq!(report.emissions[0].to_string(), live[0].to_string());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_deployment() {
        let dir = tmp_dir("refuse");
        let mut durable =
            DurableEngine::create(&dir, engine_with_q(), DurableOptions::default()).unwrap();
        let reg = durable.engine().schemas().clone();
        durable
            .ingest(0, &[ev(&reg, "SHELF_READING", 1, 7)])
            .unwrap();
        drop(durable);
        let err =
            DurableEngine::create(&dir, engine_with_q(), DurableOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            DurableError::Store(StoreError::InvalidArgument(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_ahead_of_truncated_log_is_detected() {
        let dir = tmp_dir("ahead");
        let mut durable =
            DurableEngine::create(&dir, engine_with_q(), DurableOptions::default()).unwrap();
        let reg = durable.engine().schemas().clone();
        for tick in 0..5u64 {
            durable
                .ingest(tick, &[ev(&reg, "SHELF_READING", tick + 1, 7)])
                .unwrap();
        }
        durable.checkpoint().unwrap();
        let seg = durable.log().segments()[0].clone();
        drop(durable);
        // Cut away two committed records the checkpoint depends on.
        let bytes = std::fs::read(&seg.path).unwrap();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&seg.path)
            .unwrap();
        f.set_len(bytes.len() as u64 / 2).unwrap();
        drop(f);

        let err = DurableEngine::<Engine>::recover(&dir, DurableOptions::default(), |_| {
            let mut e = Engine::new(retail_registry());
            e.register("q", Q)?;
            Ok(e)
        })
        .unwrap_err();
        assert!(
            matches!(err, DurableError::Store(StoreError::Corrupt { .. })),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_rejected_batch_cannot_poison_recovery() {
        // A batch the engine rejects (timestamp regression) is already
        // durably logged. Recovery must report the deterministic
        // re-rejection and keep going — every record after the poisoned
        // one stays reachable.
        let dir = tmp_dir("poison");
        let mut durable =
            DurableEngine::create(&dir, engine_with_q(), DurableOptions::default()).unwrap();
        let reg = durable.engine().schemas().clone();
        durable
            .ingest(0, &[ev(&reg, "SHELF_READING", 10, 7)])
            .unwrap();
        // Same tick, regressed event timestamp: log accepts, engine rejects.
        let err = durable
            .ingest(0, &[ev(&reg, "SHELF_READING", 5, 7)])
            .unwrap_err();
        assert!(matches!(err, DurableError::Core(_)));
        // The system keeps running past the bad batch.
        let live = durable
            .ingest(1, &[ev(&reg, "EXIT_READING", 11, 7)])
            .unwrap();
        assert_eq!(live.len(), 1);
        drop(durable);

        let (mut recovered, report) =
            DurableEngine::recover(&dir, DurableOptions::default(), |_| {
                let mut e = Engine::new(retail_registry());
                e.register("q", Q)?;
                Ok(e)
            })
            .unwrap();
        assert_eq!(report.records_replayed, 3);
        assert_eq!(report.replay_errors.len(), 1);
        assert_eq!(report.replay_errors[0].0, 1, "the poisoned record's seq");
        assert!(report.replay_errors[0].1.contains("out-of-order"));
        // The record after the poison replayed: its match was re-emitted
        // and the engine resumed with live state intact.
        assert_eq!(report.emissions.len(), 1);
        assert_eq!(report.emissions[0].to_string(), live[0].to_string());
        let reg = recovered.engine().schemas().clone();
        let out = recovered
            .ingest(2, &[ev(&reg, "EXIT_READING", 12, 7)])
            .unwrap();
        assert_eq!(out.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_checkpoint_with_post_build_register_recovers() {
        // Post-build registration must be placement-deterministic: a
        // recovery that replays the same registration sequence (builder
        // queries, then the post-build register) reproduces the query →
        // shard assignment, so the checkpoint restores cleanly.
        let build = |snaps: Option<&SnapshotSet>| -> CoreResult<crate::ShardedEngine> {
            let reg = retail_registry();
            if let Some(s) = snaps {
                s.preregister_derived(&reg)?;
            }
            let mut b = crate::ShardedEngineBuilder::new(reg);
            b.register("a", Q)?;
            b.register("b", "EVENT COUNTER_READING c RETURN c.TagId AS t")?;
            let mut sharded = b.build(2)?;
            sharded.register("late", "EVENT EXIT_READING z RETURN z.TagId AS t")?;
            Ok(sharded)
        };
        let dir = tmp_dir("sharded-late");
        let mut durable =
            DurableEngine::create(&dir, build(None).unwrap(), DurableOptions::default()).unwrap();
        let reg = durable.engine().schemas().clone();
        durable
            .ingest(0, &[ev(&reg, "SHELF_READING", 1, 7)])
            .unwrap();
        durable.checkpoint().unwrap();
        drop(durable);

        let (mut recovered, report) =
            DurableEngine::recover(&dir, DurableOptions::default(), build).unwrap();
        assert_eq!(report.checkpoint_seq, Some(1));
        assert!(report.replay_errors.is_empty());
        // The pending sequence and the late query both resumed.
        let out = recovered
            .ingest(1, &[ev(&reg, "EXIT_READING", 2, 7)])
            .unwrap();
        assert_eq!(out.len(), 2, "`a` match + `late` match: {out:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_tick_surfaces_never_brick_the_log() {
        // The trait surface stamps event-timestamp WAL ticks; the inherent
        // ingest takes a logical tick. Interleaving the two clocks must
        // keep the log appendable (ticks clamp up, never reject).
        let dir = tmp_dir("mixedticks");
        let mut durable =
            DurableEngine::create(&dir, engine_with_q(), DurableOptions::default()).unwrap();
        let reg = durable.engine().schemas().clone();
        durable
            .ingest(0, &[ev(&reg, "SHELF_READING", 1000, 7)])
            .unwrap();
        // Trait-surface ingest: WAL tick = event timestamp (1001).
        let p: &mut dyn EventProcessor = &mut durable;
        p.process_batch(&[ev(&reg, "SHELF_READING", 1001, 8)])
            .unwrap();
        // Back to logical ticks: 1 < 1001 clamps instead of erroring.
        let out = durable
            .ingest(1, &[ev(&reg, "EXIT_READING", 1002, 7)])
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(durable.log().next_seq(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_restore_rejects_wrong_shard_count() {
        let mut builder = crate::ShardedEngineBuilder::new(retail_registry());
        builder.register("a", Q).unwrap();
        builder
            .register("b", "EVENT COUNTER_READING c RETURN c.TagId AS t")
            .unwrap();
        let mut sharded = builder.build(2).unwrap();
        let snaps = sharded.snapshot();
        assert_eq!(snaps.len(), 2);
        let short = SnapshotSet {
            engines: snaps.engines[..1].to_vec(),
        };
        assert!(sharded.restore(&short).is_err());
        assert!(sharded.restore(&snaps).is_ok());
    }
}
