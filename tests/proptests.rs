//! Property-based tests (proptest) over the core engine:
//!
//! * the canonical printer and parser round-trip,
//! * the SSC operator agrees with a brute-force enumeration oracle on
//!   randomly generated streams (for both plain and negated patterns),
//! * every optimized configuration agrees with the naive NFA runner,
//! * structural invariants of emitted matches.

use proptest::prelude::*;

use sase::core::functions::FunctionRegistry;
use sase::core::lang::parse_query;
use sase::core::plan::{Planner, PlannerOptions};
use sase::core::runtime::QueryRuntime;
use sase::core::value::Value;
use sase::core::{Event, SchemaRegistry};

// ---------------------------------------------------------------------------
// Stream generation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RawEvent {
    ty: usize, // 0 = SHELF, 1 = COUNTER, 2 = EXIT
    ts_gap: u64,
    tag: i64,
    area: i64,
}

fn arb_stream(max_len: usize) -> impl Strategy<Value = Vec<RawEvent>> {
    prop::collection::vec(
        (0usize..3, 1u64..4, 0i64..4, 1i64..5).prop_map(|(ty, ts_gap, tag, area)| RawEvent {
            ty,
            ts_gap,
            tag,
            area,
        }),
        0..max_len,
    )
}

fn materialize(registry: &SchemaRegistry, raw: &[RawEvent]) -> Vec<Event> {
    const TYPES: [&str; 3] = ["SHELF_READING", "COUNTER_READING", "EXIT_READING"];
    let mut ts = 0;
    raw.iter()
        .map(|r| {
            ts += r.ts_gap;
            registry
                .build_event(
                    TYPES[r.ty],
                    ts,
                    vec![Value::Int(r.tag), Value::str("p"), Value::Int(r.area)],
                )
                .unwrap()
        })
        .collect()
}

fn run(query: &str, options: PlannerOptions, events: &[Event]) -> Vec<Vec<u64>> {
    let registry = sase::core::event::retail_registry();
    let planner = Planner::new(registry, FunctionRegistry::with_stdlib());
    let q = parse_query(query).unwrap();
    let plan = planner.plan_with(&q, options).unwrap();
    let mut rt = QueryRuntime::new("prop", plan);
    let out = rt.process_all(events).unwrap();
    let mut canon: Vec<Vec<u64>> = out
        .iter()
        .map(|ce| ce.events.iter().map(|e| e.timestamp()).collect())
        .collect();
    canon.sort();
    canon
}

// ---------------------------------------------------------------------------
// Brute-force oracles
// ---------------------------------------------------------------------------

/// All (shelf, exit) pairs with equal tags within the window.
fn oracle_seq2(events: &[Event], window: u64) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    for (i, a) in events.iter().enumerate() {
        if a.type_name() != "SHELF_READING" {
            continue;
        }
        for b in &events[i + 1..] {
            if b.type_name() != "EXIT_READING" {
                continue;
            }
            if b.timestamp() <= a.timestamp() {
                continue;
            }
            if b.timestamp() - a.timestamp() > window {
                continue;
            }
            if a.attr("TagId") != b.attr("TagId") {
                continue;
            }
            out.push(vec![a.timestamp(), b.timestamp()]);
        }
    }
    out.sort();
    out
}

/// Q1 oracle: pairs as above, minus those with a same-tag counter reading
/// strictly between.
fn oracle_q1(events: &[Event], window: u64) -> Vec<Vec<u64>> {
    oracle_seq2(events, window)
        .into_iter()
        .filter(|pair| {
            let (t0, t1) = (pair[0], pair[1]);
            let tag = events
                .iter()
                .find(|e| e.timestamp() == t0 && e.type_name() == "SHELF_READING")
                .unwrap()
                .attr("TagId");
            !events.iter().any(|e| {
                e.type_name() == "COUNTER_READING"
                    && e.timestamp() > t0
                    && e.timestamp() < t1
                    && e.attr("TagId") == tag
            })
        })
        .collect()
}

const SEQ2: &str = "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId WITHIN 10";
const Q1: &str = "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) \
                  WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 10";

// Timestamps can collide across events only via different gap events; gaps
// are >= 1 so timestamps are strictly increasing and unique, making the
// timestamp-vector canonicalization faithful.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ssc_matches_brute_force_seq2(raw in arb_stream(40)) {
        let registry = sase::core::event::retail_registry();
        let events = materialize(&registry, &raw);
        let got = run(SEQ2, PlannerOptions::default(), &events);
        let want = oracle_seq2(&events, 10);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn ssc_matches_brute_force_q1_negation(raw in arb_stream(40)) {
        let registry = sase::core::event::retail_registry();
        let events = materialize(&registry, &raw);
        let got = run(Q1, PlannerOptions::default(), &events);
        let want = oracle_q1(&events, 10);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn naive_agrees_with_optimized(raw in arb_stream(60)) {
        let registry = sase::core::event::retail_registry();
        let events = materialize(&registry, &raw);
        for q in [SEQ2, Q1] {
            let a = run(q, PlannerOptions::default(), &events);
            let b = run(q, PlannerOptions::naive(), &events);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn matches_are_well_formed(raw in arb_stream(60)) {
        let registry = sase::core::event::retail_registry();
        let events = materialize(&registry, &raw);
        let planner = Planner::new(registry.clone(), FunctionRegistry::with_stdlib());
        let q = parse_query(Q1).unwrap();
        let plan = planner.plan(&q).unwrap();
        let mut rt = QueryRuntime::new("prop", plan);
        let out = rt.process_all(&events).unwrap();
        for ce in &out {
            prop_assert_eq!(ce.events.len(), 2);
            prop_assert_eq!(ce.events[0].type_name(), "SHELF_READING");
            prop_assert_eq!(ce.events[1].type_name(), "EXIT_READING");
            prop_assert!(ce.events[0].timestamp() < ce.events[1].timestamp());
            prop_assert!(ce.events[1].timestamp() - ce.events[0].timestamp() <= 10);
            prop_assert_eq!(
                ce.events[0].attr("TagId"),
                ce.events[1].attr("TagId")
            );
            prop_assert_eq!(ce.detected_at, ce.events[1].timestamp());
        }
    }

    #[test]
    fn parser_round_trips_generated_queries(
        window in 1u64..5000,
        area in 0i64..10,
        use_neg in any::<bool>(),
        use_equiv in any::<bool>(),
        use_return in any::<bool>(),
    ) {
        let pattern = if use_neg {
            "SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)"
        } else {
            "SEQ(SHELF_READING x, EXIT_READING z)"
        };
        let where_clause = if use_equiv {
            format!("WHERE [TagId] AND x.AreaId = {area}")
        } else {
            format!("WHERE x.TagId = z.TagId AND x.AreaId != {area}")
        };
        let ret = if use_return {
            "\nRETURN x.TagId, z.AreaId AS exit_area, count(*)"
        } else {
            ""
        };
        let src = format!("EVENT {pattern}\n{where_clause}\nWITHIN {window}{ret}");
        let q1 = parse_query(&src).unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        prop_assert_eq!(q1, q2);
    }

    #[test]
    fn stats_invariants(raw in arb_stream(60)) {
        let registry = sase::core::event::retail_registry();
        let events = materialize(&registry, &raw);
        let planner = Planner::new(registry.clone(), FunctionRegistry::with_stdlib());
        let q = parse_query(Q1).unwrap();
        let plan = planner.plan(&q).unwrap();
        let mut rt = QueryRuntime::new("prop", plan);
        let out = rt.process_all(&events).unwrap();
        let s = rt.stats();
        prop_assert_eq!(s.events_processed as usize, events.len());
        prop_assert_eq!(s.matches_emitted as usize, out.len());
        prop_assert_eq!(
            s.sequences_constructed,
            s.matches_emitted + s.dropped_by_negation + s.dropped_by_window
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The event database holds SELECT/INSERT consistency under random rows.
    #[test]
    fn sql_insert_select_consistency(rows in prop::collection::vec((0i64..20, 1i64..5), 1..60)) {
        let db = sase::db::Database::new();
        db.execute("CREATE TABLE t (item int, area int)").unwrap();
        db.execute("CREATE INDEX ON t (item)").unwrap();
        for (item, area) in &rows {
            db.execute(&format!("INSERT INTO t VALUES ({item}, {area})")).unwrap();
        }
        let total = db.query("SELECT count(*) FROM t").unwrap();
        prop_assert_eq!(total.rows[0][0].as_int().unwrap() as usize, rows.len());
        // Per-item counts via the index path match the naive count.
        for probe in 0..20i64 {
            let rs = db
                .query(&format!("SELECT count(*) FROM t WHERE item = {probe}"))
                .unwrap();
            let want = rows.iter().filter(|(i, _)| *i == probe).count();
            prop_assert_eq!(rs.rows[0][0].as_int().unwrap() as usize, want);
        }
    }

    /// Location-store invariant: at most one open stay per item; history
    /// intervals are contiguous and ordered.
    #[test]
    fn location_history_invariants(moves in prop::collection::vec((0i64..5, 1i64..6), 1..40)) {
        let store = sase::db::LocationStore::open(sase::db::Database::new()).unwrap();
        let mut ts = 0i64;
        for (item, area) in &moves {
            ts += 1;
            store.update_location(*item, *area, ts).unwrap();
        }
        for item in 0..5i64 {
            let hist = store.history(item).unwrap();
            let open = hist.iter().filter(|s| s.time_out == sase::db::OPEN).count();
            prop_assert!(open <= 1);
            for w in hist.windows(2) {
                prop_assert_eq!(w[0].time_out, w[1].time_in, "contiguous stays");
                prop_assert!(w[0].time_in < w[1].time_in);
                prop_assert!(w[0].area != w[1].area, "no-op moves are skipped");
            }
        }
    }
}

/// Brute-force oracle for the 3-component sequence with tag equivalence.
fn oracle_seq3(events: &[Event], window: u64) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    for (i, a) in events.iter().enumerate() {
        if a.type_name() != "SHELF_READING" {
            continue;
        }
        for (j, b) in events.iter().enumerate().skip(i + 1) {
            if b.type_name() != "COUNTER_READING"
                || b.timestamp() <= a.timestamp()
                || a.attr("TagId") != b.attr("TagId")
            {
                continue;
            }
            for c in &events[j + 1..] {
                if c.type_name() != "EXIT_READING"
                    || c.timestamp() <= b.timestamp()
                    || a.attr("TagId") != c.attr("TagId")
                    || c.timestamp() - a.timestamp() > window
                {
                    continue;
                }
                out.push(vec![a.timestamp(), b.timestamp(), c.timestamp()]);
            }
        }
    }
    out.sort();
    out
}

const SEQ3: &str = "EVENT SEQ(SHELF_READING a, COUNTER_READING b, EXIT_READING c) \
                    WHERE [TagId] WITHIN 12";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ssc_matches_brute_force_seq3(raw in arb_stream(36)) {
        let registry = sase::core::event::retail_registry();
        let events = materialize(&registry, &raw);
        let got = run(SEQ3, PlannerOptions::default(), &events);
        let want = oracle_seq3(&events, 12);
        prop_assert_eq!(got, want);
    }

    /// The derived-stream path is deterministic: two engines fed the same
    /// stream produce identical output sequences, including re-ingested
    /// INTO events.
    #[test]
    fn into_composition_deterministic(raw in arb_stream(40)) {
        let registry = sase::core::event::retail_registry();
        let events = materialize(&registry, &raw);
        let build = || {
            let mut engine = sase::core::engine::Engine::new(registry.clone());
            engine
                .register(
                    "stage1",
                    "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE [TagId] WITHIN 10 \
                     RETURN x.TagId AS tag, z.AreaId AS area INTO pairs",
                )
                .unwrap();
            engine
        };
        let run_engine = |mut engine: sase::core::engine::Engine| -> Vec<String> {
            let mut out = Vec::new();
            for e in &events {
                out.extend(engine.process(e).unwrap());
            }
            out.iter().map(|d| d.to_string()).collect()
        };
        let a = run_engine(build());
        let b = run_engine(build());
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Language round-trip: parse -> AST -> pretty-print -> reparse == same AST
// ---------------------------------------------------------------------------

/// Deterministic generator of syntactically valid (if semantically wild)
/// SASE query strings, driven by a proptest-supplied seed. Covers every
/// printable construct: FROM/INTO, multi-component SEQ with ANY and
/// negation, all binary/unary operators with nested parentheses, the
/// equivalence shorthand, function calls, literals, WITHIN units, and
/// RETURN scalars/aggregates with aliases.
mod query_gen {
    use rand::rngs::StdRng;
    use rand::Rng;

    const ATTRS: [&str; 3] = ["TagId", "ProductName", "AreaId"];
    const TYPES: [&str; 4] = [
        "SHELF_READING",
        "COUNTER_READING",
        "EXIT_READING",
        "BACKROOM_READING",
    ];
    const UNITS: [&str; 5] = ["units", "seconds", "minutes", "hours", "days"];
    const CMPS: [&str; 6] = ["=", "!=", "<", "<=", ">", ">="];
    const ARITH: [&str; 5] = ["+", "-", "*", "/", "%"];

    fn attr(rng: &mut StdRng) -> &'static str {
        ATTRS[rng.gen_range(0..ATTRS.len())]
    }

    /// A scalar (non-boolean) expression over the bound variables.
    fn scalar(rng: &mut StdRng, vars: &[String], depth: u32) -> String {
        match rng.gen_range(0..if depth == 0 { 4u32 } else { 7 }) {
            0 => format!("{}", rng.gen_range(0i64..1000)),
            1 => format!("'{}'", ["soap", "milk", "tea"][rng.gen_range(0..3usize)]),
            2 | 3 => format!("{}.{}", vars[rng.gen_range(0..vars.len())], attr(rng)),
            4 => format!("-({})", scalar(rng, vars, depth - 1)),
            5 => {
                let op = ARITH[rng.gen_range(0..ARITH.len())];
                format!(
                    "({} {} {})",
                    scalar(rng, vars, depth - 1),
                    op,
                    scalar(rng, vars, depth - 1)
                )
            }
            _ => {
                let args = (0..rng.gen_range(0..3u32))
                    .map(|_| scalar(rng, vars, depth - 1))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("_f{}({args})", rng.gen_range(0..3u32))
            }
        }
    }

    /// A boolean expression over the bound variables.
    fn boolean(rng: &mut StdRng, vars: &[String], depth: u32) -> String {
        match rng.gen_range(0..if depth == 0 { 2u32 } else { 5 }) {
            0 => {
                let op = CMPS[rng.gen_range(0..CMPS.len())];
                format!(
                    "{} {} {}",
                    scalar(rng, vars, depth.saturating_sub(1)),
                    op,
                    scalar(rng, vars, depth.saturating_sub(1))
                )
            }
            1 => format!("[{}]", attr(rng)),
            2 => format!("NOT ({})", boolean(rng, vars, depth - 1)),
            _ => {
                let op = if rng.gen_bool(0.5) { "AND" } else { "OR" };
                format!(
                    "({}) {} ({})",
                    boolean(rng, vars, depth - 1),
                    op,
                    boolean(rng, vars, depth - 1)
                )
            }
        }
    }

    /// One RETURN item, possibly aliased.
    fn return_item(rng: &mut StdRng, vars: &[String], idx: usize) -> String {
        let body = match rng.gen_range(0..4u32) {
            0 => scalar(rng, vars, 2),
            1 => "count(*)".to_string(),
            2 => {
                let agg = ["sum", "avg", "min", "max"][rng.gen_range(0..4usize)];
                format!("{agg}({})", attr(rng))
            }
            _ => {
                let agg = ["sum", "avg", "min", "max"][rng.gen_range(0..4usize)];
                format!(
                    "{agg}({}.{})",
                    vars[rng.gen_range(0..vars.len())],
                    attr(rng)
                )
            }
        };
        if rng.gen_bool(0.5) {
            format!("{body} AS out{idx}")
        } else {
            body
        }
    }

    /// A complete random query string.
    pub fn query(rng: &mut StdRng) -> String {
        let mut src = String::new();
        if rng.gen_bool(0.3) {
            src.push_str(&format!("FROM stream{} ", rng.gen_range(0..5u32)));
        }

        // Pattern: 1-4 positive components, optional interior negation,
        // each component either a plain type or ANY(...).
        let positive = rng.gen_range(1..=4usize);
        let negate_after = if positive >= 2 && rng.gen_bool(0.4) {
            Some(rng.gen_range(1..positive))
        } else {
            None
        };
        let mut elems = Vec::new();
        let mut vars: Vec<String> = Vec::new();
        for i in 0..positive {
            let var = format!("v{i}");
            let component = if rng.gen_bool(0.25) {
                let n = rng.gen_range(2..=3usize);
                let mut picks: Vec<&str> = Vec::new();
                for k in 0..n {
                    picks.push(TYPES[(i + k) % TYPES.len()]);
                }
                format!("ANY({}) {var}", picks.join(", "))
            } else {
                format!("{} {var}", TYPES[rng.gen_range(0..TYPES.len())])
            };
            elems.push(component);
            vars.push(var);
            if negate_after == Some(i + 1) && i + 1 < positive {
                let nvar = "neg".to_string();
                elems.push(format!(
                    "!({} {nvar})",
                    TYPES[rng.gen_range(0..TYPES.len())]
                ));
                vars.push(nvar);
            }
        }
        src.push_str(&format!("EVENT SEQ({})", elems.join(", ")));

        if rng.gen_bool(0.8) {
            src.push_str(&format!(" WHERE {}", boolean(rng, &vars, 3)));
        }
        if rng.gen_bool(0.8) {
            let amount = rng.gen_range(1u64..100_000);
            if rng.gen_bool(0.5) {
                src.push_str(&format!(" WITHIN {amount}"));
            } else {
                src.push_str(&format!(
                    " WITHIN {amount} {}",
                    UNITS[rng.gen_range(0..UNITS.len())]
                ));
            }
        }
        if rng.gen_bool(0.7) {
            let items = (0..rng.gen_range(1..=4usize))
                .map(|i| return_item(rng, &vars, i))
                .collect::<Vec<_>>()
                .join(", ");
            src.push_str(&format!(" RETURN {items}"));
            if rng.gen_bool(0.3) {
                src.push_str(&format!(" INTO derived{}", rng.gen_range(0..5u32)));
            }
        }
        src
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse -> AST -> canonical print -> reparse is the identity on ASTs,
    /// over deeply varied generated queries (every printable construct).
    #[test]
    fn parser_round_trips_deep_generated_queries(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let src = query_gen::query(&mut rng);
        let q1 = parse_query(&src)
            .unwrap_or_else(|e| panic!("generated query must parse: {e}\n  {src}"));
        let printed = q1.to_string();
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("canonical print must reparse: {e}\n  {printed}"));
        prop_assert_eq!(&q1, &q2, "print/reparse diverged for\n  {}\n  {}", src, printed);

        // The canonical form is a fixed point: printing q2 changes nothing.
        prop_assert_eq!(printed, q2.to_string());
    }
}
