//! Experiment D4: track-and-trace queries over a pre-populated event
//! database (§4's warehouse workload).

use sase::db::{Database, TraceEntry, TrackAndTrace, OPEN};
use sase::rfid::noise::NoiseModel;
use sase::rfid::warehouse::{self, areas};
use sase::system::SaseSystem;

#[test]
fn d4_every_item_traceable_end_to_end() {
    let mut sys = SaseSystem::retail(NoiseModel::perfect(), 5, 10).unwrap();
    let trace = warehouse::generate(42, 50, 5);
    sys.prepopulate_warehouse(&trace).unwrap();

    for &item in &trace.items {
        // Current location: always a shelf at the end of the trace.
        let cur = sys
            .track_and_trace()
            .current_location(item)
            .unwrap()
            .unwrap_or_else(|| panic!("item {item} is somewhere"));
        assert!(
            cur.area == areas::SHELF_1 || cur.area == areas::SHELF_2,
            "item {item} in {}",
            cur.area
        );
        assert_eq!(cur.time_out, OPEN);

        // Movement history follows the canonical supply-chain path.
        let history = sys.track_and_trace().movement_history(item).unwrap();
        let area_path: Vec<i64> = history
            .iter()
            .filter_map(|e| match e {
                TraceEntry::Location { area, .. } => Some(*area),
                TraceEntry::Containment { .. } => None,
            })
            .collect();
        assert_eq!(area_path[0], areas::LOADING_DOCK, "item {item}");
        assert_eq!(area_path[1], areas::UNLOADING_ZONE, "item {item}");
        assert_eq!(area_path[2], areas::BACKROOM, "item {item}");

        // Containment: boxed through the warehouse leg, unboxed at stocking.
        let boxed: Vec<&TraceEntry> = history
            .iter()
            .filter(|e| matches!(e, TraceEntry::Containment { .. }))
            .collect();
        assert!(!boxed.is_empty(), "item {item} was never boxed");
        assert!(
            boxed.iter().all(|e| match e {
                TraceEntry::Containment { time_out, .. } => *time_out != OPEN,
                _ => unreachable!(),
            }),
            "item {item} is still boxed on a shelf"
        );
    }
}

#[test]
fn d4_containment_contents_are_consistent() {
    let trace = warehouse::generate(9, 30, 3);
    let tnt = TrackAndTrace::open(Database::new()).unwrap();
    // Replay only up to the midpoint timestamp; contents must equal a
    // straightforward interpretation of the operations so far.
    let mid = trace.containments[trace.containments.len() / 2].ts;
    let mut expected: std::collections::HashMap<i64, i64> = Default::default();
    for c in trace.containments.iter().filter(|c| c.ts <= mid) {
        if c.added {
            tnt.containments()
                .add_to_container(c.item, c.container, c.ts as i64)
                .unwrap();
            expected.insert(c.item, c.container);
        } else {
            tnt.containments()
                .remove_from_container(c.item, c.ts as i64)
                .unwrap();
            expected.remove(&c.item);
        }
    }
    for container in &trace.containers {
        let mut want: Vec<i64> = expected
            .iter()
            .filter(|(_, c)| *c == container)
            .map(|(i, _)| *i)
            .collect();
        want.sort_unstable();
        assert_eq!(
            tnt.containments().contents(*container).unwrap(),
            want,
            "container {container}"
        );
    }
}

#[test]
fn d4_adhoc_sql_over_prepopulated_database() {
    let mut sys = SaseSystem::retail(NoiseModel::perfect(), 5, 10).unwrap();
    let trace = warehouse::generate(11, 40, 4);
    sys.prepopulate_warehouse(&trace).unwrap();
    let db = sys.database();

    // Every item has exactly one open stay.
    let rs = db
        .query("SELECT count(*) AS open_stays FROM item_location WHERE time_out = -1")
        .unwrap();
    assert_eq!(rs.rows[0][0].as_int().unwrap(), 40);

    // Shelf occupancy sums to the item count.
    let rs = db
        .query(
            "SELECT area, count(*) AS n FROM item_location \
             WHERE time_out = -1 GROUP BY area ORDER BY area",
        )
        .unwrap();
    let total: i64 = rs.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(total, 40);
    for row in &rs.rows {
        let area = row[0].as_int().unwrap();
        assert!(area == areas::SHELF_1 || area == areas::SHELF_2);
    }
}
