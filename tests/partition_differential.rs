//! Differential property tests for data-parallel sharding
//! ([`ShardingMode::ByPartitionKey`]): random streams with skewed
//! partition-key distributions — a hot key taking ~80% of the stream,
//! uniform keys, and singleton keys unique per event — plus events whose
//! type carries no partition-key attribute at all, are driven through
//! 1/2/4/8 data shards and must emit **byte for byte** (provenance tags
//! included) what the indexed single engine emits, across a mid-stream
//! unregister of a distributed query and registration of a pinned one.
//!
//! A deterministic companion test locks in the heterogeneous-key routing
//! rule: a key attribute typed `Int` in one schema and `Float` in another
//! must hash `Int(3)` and `Float(3.0)` to the same shard (integral floats
//! normalize to integer keys, matching `=` coercion), so cross-type
//! equivalence matches survive distribution.

use proptest::prelude::*;

use sase::core::engine::{Emission, Engine, RoutingMode};
use sase::core::event::{Event, SchemaRegistry};
use sase::core::value::{Value, ValueType};
use sase::core::EventProcessor;
use sase::system::{ShardedEngineBuilder, ShardingMode};

/// `AUDITS` carries no `UserId`: its events are the "missing partition
/// key attribute" population and never route to a data shard.
fn registry() -> SchemaRegistry {
    let reg = SchemaRegistry::new();
    reg.register(
        "ORDERS",
        &[("UserId", ValueType::Int), ("Amount", ValueType::Int)],
    )
    .unwrap();
    reg.register(
        "SHIPMENTS",
        &[("UserId", ValueType::Int), ("Amount", ValueType::Int)],
    )
    .unwrap();
    reg.register("AUDITS", &[("Note", ValueType::Str)]).unwrap();
    reg
}

/// Initial query set: two distributable queries sharing the `UserId`
/// claim on `ORDERS`, and one pinned query with no partition key.
const QUERIES: [(&str, &str); 3] = [
    (
        "flow",
        "EVENT SEQ(ORDERS x, SHIPMENTS y) WHERE x.UserId = y.UserId \
         WITHIN 40 RETURN x.UserId AS u, y.Amount AS amt",
    ),
    (
        "big",
        "EVENT SEQ(ORDERS x, ORDERS y) WHERE x.UserId = y.UserId \
         AND x.Amount != y.Amount WITHIN 30 RETURN x.UserId AS u",
    ),
    ("audit", "EVENT AUDITS a RETURN a.Note AS note"),
];

/// Registered mid-stream, after `big` is unregistered. Its partition key
/// (`UserId`) does not cover the negated `AUDITS` slot, so the router
/// must pin it: counterexample events would otherwise miss the shard
/// holding the partial run.
const NEG_QUERY: (&str, &str) = (
    "neg",
    "EVENT SEQ(ORDERS a, !(AUDITS n), SHIPMENTS b) WHERE a.UserId = b.UserId \
     WITHIN 40 RETURN a.UserId AS u",
);

#[derive(Debug, Clone, Copy)]
enum Skew {
    /// ~80% of events land on key 0.
    Hot,
    /// Keys spread over 8 values.
    Uniform,
    /// Every event gets its own key.
    Singleton,
}

#[derive(Debug, Clone)]
struct RawEvent {
    ty: usize, // 0 = ORDERS, 1 = SHIPMENTS, 2 = AUDITS
    ts_gap: u64,
    user: i64,
    amount: i64,
}

fn arb_case() -> impl Strategy<Value = (Skew, usize, Vec<RawEvent>)> {
    (
        (0usize..3).prop_map(|i| [Skew::Hot, Skew::Uniform, Skew::Singleton][i]),
        (0usize..4).prop_map(|i| [1usize, 2, 4, 8][i]),
        prop::collection::vec(
            (0usize..3, 0u64..3, 0i64..40, 0i64..5).prop_map(|(ty, ts_gap, user, amount)| {
                RawEvent {
                    ty,
                    ts_gap,
                    user,
                    amount,
                }
            }),
            0..64,
        ),
    )
}

fn materialize(reg: &SchemaRegistry, skew: Skew, raw: &[RawEvent]) -> Vec<Event> {
    let mut ts = 1u64; // ts_gap of 0 is legal: equal timestamps pass the clock
    raw.iter()
        .enumerate()
        .map(|(i, r)| {
            ts += r.ts_gap;
            let user = match skew {
                Skew::Hot => {
                    if r.user % 10 < 8 {
                        0
                    } else {
                        r.user
                    }
                }
                Skew::Uniform => r.user % 8,
                Skew::Singleton => i as i64,
            };
            match r.ty {
                0 => reg.build_event("ORDERS", ts, vec![Value::Int(user), Value::Int(r.amount)]),
                1 => reg.build_event(
                    "SHIPMENTS",
                    ts,
                    vec![Value::Int(user), Value::Int(r.amount)],
                ),
                _ => reg.build_event("AUDITS", ts, vec![Value::str("n")]),
            }
            .unwrap()
        })
        .collect()
}

fn render(e: &Emission) -> String {
    format!("{}|{}|{:?}|{}", e.input_index, e.depth, e.path, e.output)
}

/// Drive one chunk, asserting the order_key contract.
fn drive(p: &mut dyn EventProcessor, chunk: &[Event]) -> Vec<String> {
    let tagged = p.process_batch_tagged(None, chunk).unwrap();
    assert!(
        tagged
            .windows(2)
            .all(|w| w[0].order_key() <= w[1].order_key()),
        "emissions must arrive sorted by order_key"
    );
    tagged.iter().map(render).collect()
}

/// Mid-stream mutation: drop a distributed query, add a pinned one.
fn mutate(p: &mut dyn EventProcessor) {
    assert!(p.unregister("big"));
    p.register(NEG_QUERY.0, NEG_QUERY.1).unwrap();
}

/// Run the scripted workload: first half, mutation, second half,
/// chunked so batch boundaries fall at arbitrary stream offsets.
fn run_mutating(p: &mut dyn EventProcessor, events: &[Event]) -> Vec<String> {
    let mut out = Vec::new();
    let (first, second) = events.split_at(events.len() / 2);
    for chunk in first.chunks(7) {
        out.extend(drive(p, chunk));
    }
    mutate(p);
    for chunk in second.chunks(7) {
        out.extend(drive(p, chunk));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Data-parallel sharding is byte-identical to the indexed single
    /// engine under every skew, shard count, and mid-stream mutation.
    #[test]
    fn by_partition_key_matches_indexed_engine(case in arb_case()) {
        let (skew, shards, raw) = case;
        let events = materialize(&registry(), skew, &raw);

        let mut reference = Engine::new(registry());
        for (name, src) in QUERIES {
            reference.register(name, src).unwrap();
        }
        let expected = run_mutating(&mut reference, &events);

        let mut builder = ShardedEngineBuilder::new(registry());
        builder.set_sharding(ShardingMode::ByPartitionKey);
        for (name, src) in QUERIES {
            builder.register(name, src).unwrap();
        }
        let mut sharded = builder.build(shards).unwrap();
        prop_assert_eq!(sharded.shard_count(), shards + 1);
        prop_assert_eq!(sharded.shard_of("flow"), None);
        prop_assert_eq!(sharded.shard_of("big"), None);
        prop_assert_eq!(sharded.shard_of("audit"), Some(shards));

        let got = run_mutating(&mut sharded, &events);
        // The uncovered negated slot pins the late registration.
        prop_assert_eq!(sharded.shard_of("neg"), Some(shards));
        prop_assert_eq!(
            got, expected,
            "ByPartitionKey({}) diverged under {:?} skew", shards, skew
        );
    }
}

/// The heterogeneous-key routing rule, pinned deterministically: the same
/// logical key appearing as `Int(3)` on `HOT_A` and `Float(3.0)` on
/// `HOT_B` must land on the same data shard, so the cross-type `=` match
/// (which coerces numerically) survives distribution. Non-integral floats
/// stay distinct keys and must not match.
#[test]
fn heterogeneous_key_types_route_together() {
    let registry = || {
        let reg = SchemaRegistry::new();
        reg.register("HOT_A", &[("Key", ValueType::Int)]).unwrap();
        reg.register("HOT_B", &[("Key", ValueType::Float)]).unwrap();
        reg
    };
    const QUERY: (&str, &str) = (
        "mix",
        "EVENT SEQ(HOT_A x, HOT_B y) WHERE x.Key = y.Key WITHIN 10 \
         RETURN x.Key AS k",
    );
    let reg = registry();
    let events = vec![
        reg.build_event("HOT_A", 1, vec![Value::Int(3)]).unwrap(),
        reg.build_event("HOT_B", 2, vec![Value::Float(3.5)])
            .unwrap(),
        reg.build_event("HOT_B", 3, vec![Value::Float(3.0)])
            .unwrap(),
        reg.build_event("HOT_A", 4, vec![Value::Int(0)]).unwrap(),
        reg.build_event("HOT_B", 5, vec![Value::Float(-0.0)])
            .unwrap(),
    ];

    let run_single = |mode: RoutingMode| {
        let mut engine = Engine::new(registry());
        engine.set_routing(mode);
        engine.register(QUERY.0, QUERY.1).unwrap();
        drive(&mut engine, &events)
    };
    let naive = run_single(RoutingMode::ScanAll);
    let indexed = run_single(RoutingMode::Indexed);
    assert_eq!(naive, indexed);
    assert_eq!(
        naive.len(),
        2,
        "Int(3)=Float(3.0) and Int(0)=Float(-0.0) must match: {naive:?}"
    );

    let mut builder = ShardedEngineBuilder::new(registry());
    builder.set_sharding(ShardingMode::ByPartitionKey);
    builder.register(QUERY.0, QUERY.1).unwrap();
    let mut sharded = builder.build(4).unwrap();
    assert_eq!(sharded.shard_of("mix"), None, "mix must distribute");
    assert_eq!(drive(&mut sharded, &events), naive);
}
