//! Public-API snapshot: the exported facade surface — the `Sase` builder
//! facade, its handle/subscription types, the umbrella re-exports, and
//! the `EventProcessor` trait — is recorded in
//! `tests/public_api.snapshot`. This test fails when the surface changes
//! without the snapshot being updated, so API changes are always explicit
//! in review instead of slipping out unannounced.
//!
//! To update after an intentional change, replace the snapshot with the
//! `=== current surface ===` block this test prints on failure.

use std::fmt::Write as _;
use std::path::Path;

/// Extract normalized public item signatures from a source file.
///
/// Captures `pub fn` / `pub struct` / `pub enum` / `pub trait` /
/// `pub type` / `pub use` items (plus, when `trait_methods` is set, bare
/// `fn` declarations at trait-body indentation), each truncated at its
/// body and collapsed to one line.
fn surface_of(path: &Path, trait_methods: bool) -> Vec<String> {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut items = Vec::new();
    let mut pending: Option<(String, bool)> = None;
    for line in src.lines() {
        let trimmed = line.trim_start();
        // The test module is not public surface.
        if pending.is_none() && trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if pending.is_none() {
            let is_pub_item = [
                "pub fn ",
                "pub struct ",
                "pub enum ",
                "pub trait ",
                "pub type ",
            ]
            .iter()
            .any(|p| trimmed.starts_with(p))
                || trimmed.starts_with("pub use ");
            // Trait methods are declared without `pub` at one indent level.
            let is_trait_fn =
                trait_methods && line.starts_with("    fn ") && !line.starts_with("     ");
            if is_pub_item || is_trait_fn {
                // Re-export lists contain braces; only `;` ends them.
                pending = Some((String::new(), trimmed.starts_with("pub use ")));
            } else {
                continue;
            }
        }
        let (acc, is_use) = pending.as_mut().expect("set above");
        if !acc.is_empty() {
            acc.push(' ');
        }
        acc.push_str(trimmed);
        // A signature ends at its body brace or a trailing semicolon.
        let end = if *is_use {
            acc.find(';')
        } else {
            acc.find(['{', ';'])
        };
        if let Some(cut) = end {
            let mut sig = acc[..cut].trim().to_string();
            if sig.ends_with(" where Self: Sized") {
                sig.truncate(sig.len() - " where Self: Sized".len());
            }
            let sig = sig.split_whitespace().collect::<Vec<_>>().join(" ");
            items.push(sig);
            pending = None;
        }
    }
    items
}

#[test]
fn facade_surface_matches_snapshot() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut current = String::new();
    for (label, file, trait_methods) in [
        ("src/lib.rs", root.join("src/lib.rs"), false),
        ("src/facade.rs", root.join("src/facade.rs"), false),
        (
            "crates/sase-core/src/processor.rs",
            root.join("crates/sase-core/src/processor.rs"),
            true,
        ),
    ] {
        writeln!(current, "# {label}").unwrap();
        for item in surface_of(&file, trait_methods) {
            writeln!(current, "{item}").unwrap();
        }
        writeln!(current).unwrap();
    }

    let snapshot_path = root.join("tests/public_api.snapshot");
    let recorded = std::fs::read_to_string(&snapshot_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", snapshot_path.display()));
    // Normalize line endings only; content must match exactly.
    let recorded = recorded.replace("\r\n", "\n");
    assert!(
        recorded == current,
        "the exported facade surface changed without a snapshot update.\n\
         If the change is intentional, replace tests/public_api.snapshot with:\n\
         === current surface ===\n{current}=== end ===",
    );
}
