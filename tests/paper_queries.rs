//! The paper's queries, verbatim, against the engine (experiments D1/D3).

use sase::core::engine::Engine;
use sase::core::event::retail_registry;
use sase::core::lang::parse_query;
use sase::core::value::Value;
use sase::core::SchemaRegistry;

/// Q1 exactly as printed in §2.1.1, including the unicode conjunction.
const Q1_VERBATIM: &str = "EVENT    SEQ(SHELF_READING x, ! ( COUNTER_READING y),
EXIT_READING z)
WHERE    x.TagId = y.TagId ∧ x.TagId  = z.TagId
WITHIN   12 hours
RETURN  x.TagId, x.ProductName, z.AreaId,
             _retrieveLocation(z.AreaId)";

/// Q2 exactly as printed (with the paper's Q1-style attribute names; the
/// paper itself switches between `id`/`TagId` spellings across examples).
const Q2_VERBATIM: &str = "EVENT     SEQ(SHELF_READING  x, SHELF_READING y)
WHERE     x.TagId = y.TagId  ∧ x.AreaId != y.AreaId
WITHIN    1 hour
RETURN   _updateLocation(y.TagId, y.AreaId, y.Timestamp)";

fn ev(
    reg: &SchemaRegistry,
    ty: &str,
    ts: u64,
    tag: i64,
    product: &str,
    area: i64,
) -> sase::core::Event {
    reg.build_event(
        ty,
        ts,
        vec![Value::Int(tag), Value::str(product), Value::Int(area)],
    )
    .unwrap()
}

#[test]
fn q1_parses_verbatim_and_detects_shoplifting() {
    let q = parse_query(Q1_VERBATIM).unwrap();
    assert_eq!(q.pattern.elements.len(), 3);
    assert!(q.pattern.elements[1].negated);

    let registry = retail_registry();
    let mut engine = Engine::new(registry.clone());
    engine
        .functions()
        .register_fn("_retrieveLocation", Some(1), |args| {
            Ok(Value::str(format!("door near area {}", args[0])))
        });
    engine.register("q1", Q1_VERBATIM).unwrap();

    // 12 hours at the default 1 unit/sec scale = 43200 units.
    let stream = vec![
        ev(&registry, "SHELF_READING", 100, 42, "soap", 1),
        ev(&registry, "SHELF_READING", 200, 7, "milk", 2),
        ev(&registry, "COUNTER_READING", 5_000, 7, "milk", 3),
        ev(&registry, "EXIT_READING", 6_000, 7, "milk", 4),
        ev(&registry, "EXIT_READING", 7_000, 42, "soap", 4),
        // Outside the 12-hour window relative to its shelf reading:
        ev(&registry, "SHELF_READING", 10_000, 9, "bread", 1),
        ev(&registry, "EXIT_READING", 60_000, 9, "bread", 4),
    ];
    let out = engine.process_batch(&stream).unwrap();
    assert_eq!(out.len(), 1, "only the soap shoplifting fires");
    let d = &out[0];
    assert_eq!(d.value("x.TagId"), Some(&Value::Int(42)));
    assert_eq!(d.value("x.ProductName"), Some(&Value::str("soap")));
    assert_eq!(d.value("z.AreaId"), Some(&Value::Int(4)));
    assert_eq!(
        d.value("_retrieveLocation(z.AreaId)"),
        Some(&Value::str("door near area 4"))
    );
}

#[test]
fn q2_parses_verbatim_and_triggers_updates() {
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Arc;

    let q = parse_query(Q2_VERBATIM).unwrap();
    assert_eq!(q.within.unwrap().amount, 1);

    let registry = retail_registry();
    let mut engine = Engine::new(registry.clone());
    let last_area = Arc::new(AtomicI64::new(-1));
    let la = last_area.clone();
    engine
        .functions()
        .register_fn("_updateLocation", Some(3), move |args| {
            la.store(args[1].as_int().unwrap(), Ordering::SeqCst);
            Ok(Value::Bool(true))
        });
    engine.register("q2", Q2_VERBATIM).unwrap();

    let stream = vec![
        ev(&registry, "SHELF_READING", 10, 5, "soap", 1),
        ev(&registry, "SHELF_READING", 20, 5, "soap", 1), // same area: no fire
        ev(&registry, "SHELF_READING", 30, 5, "soap", 2), // moved
    ];
    let out = engine.process_batch(&stream).unwrap();
    // Both the ts=10 and ts=20 readings pair with the ts=30 one.
    assert_eq!(out.len(), 2);
    assert_eq!(last_area.load(Ordering::SeqCst), 2);
}

#[test]
fn q1_window_boundary_is_inclusive() {
    let registry = retail_registry();
    let mut engine = Engine::new(registry.clone());
    engine
        .register(
            "q",
            "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
             WHERE x.TagId = z.TagId WITHIN 12 hours RETURN x.TagId",
        )
        .unwrap();
    let stream = vec![
        ev(&registry, "SHELF_READING", 0, 1, "soap", 1),
        ev(&registry, "EXIT_READING", 43_200, 1, "soap", 4), // exactly 12h
        ev(&registry, "SHELF_READING", 43_201, 2, "soap", 1),
        ev(&registry, "EXIT_READING", 86_402, 2, "soap", 4), // 12h + 1
    ];
    let out = engine.process_batch(&stream).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].value("x.TagId"), Some(&Value::Int(1)));
}

#[test]
fn negation_counterexample_must_be_strictly_between() {
    let registry = retail_registry();
    let mut engine = Engine::new(registry.clone());
    engine
        .register(
            "q",
            "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) \
             WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 1000 RETURN x.TagId",
        )
        .unwrap();
    // Counter reading before the shelf reading does not save the thief.
    let stream = vec![
        ev(&registry, "COUNTER_READING", 5, 1, "soap", 3),
        ev(&registry, "SHELF_READING", 10, 1, "soap", 1),
        ev(&registry, "EXIT_READING", 20, 1, "soap", 4),
    ];
    let out = engine.process_batch(&stream).unwrap();
    assert_eq!(out.len(), 1, "prior counter reading is out of scope");

    // A counter reading for a different tag does not save the thief either.
    let mut engine2 = Engine::new(registry.clone());
    engine2
        .register(
            "q",
            "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) \
             WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 1000 RETURN x.TagId",
        )
        .unwrap();
    let stream = vec![
        ev(&registry, "SHELF_READING", 10, 1, "soap", 1),
        ev(&registry, "COUNTER_READING", 15, 2, "milk", 3),
        ev(&registry, "EXIT_READING", 20, 1, "soap", 4),
    ];
    let out = engine2.process_batch(&stream).unwrap();
    assert_eq!(out.len(), 1);
}

#[test]
fn engine_continues_until_query_deleted() {
    // §3: "Such processing continues until the query is deleted by the
    // user."
    let registry = retail_registry();
    let mut engine = Engine::new(registry.clone());
    engine
        .register("exits", "EVENT EXIT_READING z RETURN z.TagId")
        .unwrap();
    assert_eq!(
        engine
            .process(&ev(&registry, "EXIT_READING", 1, 1, "soap", 4))
            .unwrap()
            .len(),
        1
    );
    engine.unregister("exits");
    assert_eq!(
        engine
            .process(&ev(&registry, "EXIT_READING", 2, 1, "soap", 4))
            .unwrap()
            .len(),
        0
    );
}
