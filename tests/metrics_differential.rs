//! Conservation differential for the observability layer: the same
//! random streams are driven through a single [`Engine`], a
//! [`ShardedEngine`] in both sharding modes, and a [`DurableEngine`]
//! that crashes and recovers mid-run. Every deployment's merged
//! [`MetricsSnapshot`] must *conserve* the ground-truth counts — events
//! ingested, emissions produced, WAL events appended, events replayed at
//! recovery — and the data-parallel deployment's per-query `stats()`
//! (summed across workers) must equal the single engine's monotonic
//! counters, locking in the `ByPartitionKey` stats aggregation.
//!
//! Deterministic companions pin the registration-time diagnostics
//! counter (`sase_diagnostics_emitted_total{severity=…}`) against the
//! analyzer's own output, and snapshot-merge determinism (two
//! back-to-back `metrics()` calls render byte-identically).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use sase::core::engine::Engine;
use sase::core::event::{Event, SchemaRegistry};
use sase::core::runtime::RuntimeStats;
use sase::core::value::{Value, ValueType};
use sase::core::EventProcessor;
use sase::system::{DurableEngine, DurableOptions, ShardedEngineBuilder, ShardingMode};
use sase::MetricsRegistry;

/// `AUDITS` has no `UserId`, so its events reach only the pinned worker
/// in `ByPartitionKey` mode — the conservation laws below depend on the
/// claimed/unclaimed split being visible in the routed-event counters.
fn registry() -> SchemaRegistry {
    let reg = SchemaRegistry::new();
    reg.register(
        "ORDERS",
        &[("UserId", ValueType::Int), ("Amount", ValueType::Int)],
    )
    .unwrap();
    reg.register(
        "SHIPMENTS",
        &[("UserId", ValueType::Int), ("Amount", ValueType::Int)],
    )
    .unwrap();
    reg.register("AUDITS", &[("Note", ValueType::Str)]).unwrap();
    reg
}

/// Two distributable queries sharing the `UserId` claim, one pinned.
const QUERIES: [(&str, &str); 3] = [
    (
        "flow",
        "EVENT SEQ(ORDERS x, SHIPMENTS y) WHERE x.UserId = y.UserId \
         WITHIN 40 RETURN x.UserId AS u, y.Amount AS amt",
    ),
    (
        "big",
        "EVENT SEQ(ORDERS x, ORDERS y) WHERE x.UserId = y.UserId \
         AND x.Amount != y.Amount WITHIN 30 RETURN x.UserId AS u",
    ),
    ("audit", "EVENT AUDITS a RETURN a.Note AS note"),
];

#[derive(Debug, Clone)]
struct RawEvent {
    ty: usize, // 0 = ORDERS, 1 = SHIPMENTS, 2 = AUDITS
    ts_gap: u64,
    user: i64,
    amount: i64,
}

fn arb_case() -> impl Strategy<Value = (usize, Vec<RawEvent>)> {
    (
        (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
        prop::collection::vec(
            (0usize..3, 0u64..3, 0i64..8, 0i64..5).prop_map(|(ty, ts_gap, user, amount)| {
                RawEvent {
                    ty,
                    ts_gap,
                    user,
                    amount,
                }
            }),
            0..80,
        ),
    )
}

fn materialize(reg: &SchemaRegistry, raw: &[RawEvent]) -> Vec<Event> {
    let mut ts = 1u64;
    raw.iter()
        .map(|r| {
            ts += r.ts_gap;
            match r.ty {
                0 => reg.build_event("ORDERS", ts, vec![Value::Int(r.user), Value::Int(r.amount)]),
                1 => reg.build_event(
                    "SHIPMENTS",
                    ts,
                    vec![Value::Int(r.user), Value::Int(r.amount)],
                ),
                _ => reg.build_event("AUDITS", ts, vec![Value::str("n")]),
            }
            .unwrap()
        })
        .collect()
}

/// Drive the stream in fixed chunks; returns (batches, emissions).
fn drive(p: &mut dyn EventProcessor, events: &[Event]) -> (u64, u64) {
    let mut batches = 0u64;
    let mut emissions = 0u64;
    for chunk in events.chunks(7) {
        batches += 1;
        emissions += p.process_batch_tagged(None, chunk).unwrap().len() as u64;
    }
    (batches, emissions)
}

/// The monotonic counter rows of a query's stats — the fields that must
/// be conserved across deployment shapes (`partial_runs_peak` and
/// `partitions` are point-in-time gauges whose per-worker sums are
/// documented upper bounds, not identities).
fn mono_rows(s: &RuntimeStats) -> Vec<(&'static str, u64)> {
    s.rows()
        .into_iter()
        .filter(|&(_, _, monotonic)| monotonic)
        .map(|(label, value, _)| (label, value))
        .collect()
}

fn tmp_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sase-metricsdiff-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Counter conservation across every deployment shape.
    #[test]
    fn metrics_conserve_ground_truth_across_deployments(case in arb_case()) {
        let (data_shards, raw) = case;
        let reg = registry();
        let events = materialize(&reg, &raw);
        let n = events.len() as u64;
        let n_claimed = events
            .iter()
            .filter(|e| e.type_name() != "AUDITS")
            .count() as u64;

        // ---- Ground truth: single engine with metrics on. ----------------
        let mut reference = Engine::new(reg.clone());
        reference.enable_metrics(&MetricsRegistry::new());
        for (name, src) in QUERIES {
            reference.register(name, src).unwrap();
        }
        let (batches, emissions) = drive(&mut reference, &events);
        let ref_stats: Vec<(&str, Vec<(&'static str, u64)>)> = QUERIES
            .iter()
            .map(|(name, _)| (*name, mono_rows(&reference.stats(name).unwrap())))
            .collect();
        let snap = EventProcessor::metrics(&reference);
        prop_assert_eq!(snap.counter("sase_ingest_events_total", &[]), n);
        prop_assert_eq!(snap.counter("sase_ingest_batches_total", &[]), batches);
        prop_assert_eq!(snap.counter("sase_ingest_emissions_total", &[]), emissions);
        // The per-query promoted counters agree with the engine totals.
        prop_assert_eq!(snap.counter_sum("sase_query_matches_emitted"), emissions);

        // ---- ByQuery: every worker ingests the whole stream. -------------
        let mut builder = ShardedEngineBuilder::new(reg.clone());
        builder.set_metrics(true);
        for (name, src) in QUERIES {
            builder.register(name, src).unwrap();
        }
        let mut sharded = builder.build(3).unwrap();
        let (_, got) = drive(&mut sharded, &events);
        prop_assert_eq!(got, emissions, "ByQuery emission count diverged");
        for (name, rows) in &ref_stats {
            prop_assert_eq!(
                &mono_rows(&sharded.stats(name).unwrap()),
                rows,
                "ByQuery stats({}) diverged", name
            );
        }
        let snap = EventProcessor::metrics(&sharded);
        // Broadcast dispatch: each of the 3 workers sees every event once.
        prop_assert_eq!(snap.counter_sum("sase_shard_events_routed_total"), 3 * n);
        prop_assert_eq!(snap.counter("sase_ingest_events_total", &[]), 3 * n);
        // Each emission is produced by exactly one worker.
        prop_assert_eq!(snap.counter("sase_ingest_emissions_total", &[]), emissions);

        // ---- ByPartitionKey: claimed events route to exactly one data
        //      worker, the pinned worker sees the whole stream. ------------
        let mut builder = ShardedEngineBuilder::new(reg.clone());
        builder.set_sharding(ShardingMode::ByPartitionKey);
        builder.set_metrics(true);
        for (name, src) in QUERIES {
            builder.register(name, src).unwrap();
        }
        let mut parted = builder.build(data_shards).unwrap();
        let (_, got) = drive(&mut parted, &events);
        prop_assert_eq!(got, emissions, "ByPartitionKey emission count diverged");
        // Satellite fix under test: `stats(name)` sums a distributed
        // query's counters across the data workers.
        for (name, rows) in &ref_stats {
            prop_assert_eq!(
                &mono_rows(&parted.stats(name).unwrap()),
                rows,
                "ByPartitionKey stats({}) diverged at {} data shards",
                name, data_shards
            );
        }
        let snap = EventProcessor::metrics(&parted);
        let pinned = data_shards.to_string();
        let to_pinned = snap.counter(
            "sase_shard_events_routed_total",
            &[("shard", pinned.as_str())],
        );
        prop_assert_eq!(to_pinned, n, "the pinned worker must see every event");
        prop_assert_eq!(
            snap.counter_sum("sase_shard_events_routed_total") - to_pinned,
            n_claimed,
            "every claimed event routes to exactly one data worker"
        );
        // Queue-depth gauges settle to zero between batches.
        for shard in 0..=data_shards {
            let label = shard.to_string();
            prop_assert_eq!(
                snap.gauge("sase_shard_queue_depth", &[("shard", label.as_str())]) as u64,
                0
            );
        }
        if n_claimed > 0 {
            prop_assert!(
                snap.gauge("sase_shard_imbalance_ratio", &[]) >= 1.0,
                "imbalance ratio is max/mean over data shards, so >= 1 whenever \
                 anything routed"
            );
        }

        // ---- Durable: WAL appends conserve the stream across a crash. ----
        let dir = tmp_dir();
        let opts = DurableOptions {
            segment_bytes: 512,
            ..DurableOptions::default()
        };
        let mk = |reg: SchemaRegistry| {
            let mut e = Engine::new(reg);
            e.enable_metrics(&MetricsRegistry::new());
            for (name, src) in QUERIES {
                e.register(name, src).unwrap();
            }
            e
        };
        let (first, second) = events.split_at(events.len() / 2);
        let mut durable = DurableEngine::create(&dir, mk(reg.clone()), opts).unwrap();
        let (_, live1) = drive(&mut durable, first);
        let snap = durable.metrics();
        prop_assert_eq!(
            snap.counter("sase_wal_append_events_total", &[]),
            first.len() as u64,
            "every ingested event is appended to the WAL"
        );
        drop(durable); // crash

        let (mut recovered, report) =
            DurableEngine::recover(&dir, opts, |_| Ok(mk(reg.clone()))).unwrap();
        prop_assert_eq!(report.events_replayed, first.len() as u64);
        let snap = recovered.metrics();
        prop_assert_eq!(
            snap.counter("sase_recovery_events_replayed_total", &[]),
            first.len() as u64,
            "recovery replays exactly what was appended before the crash"
        );
        let (_, live2) = drive(&mut recovered, second);
        prop_assert_eq!(live1 + live2, emissions, "durable live emissions diverged");
        // Post-recovery WAL counters are fresh: only the second half was
        // appended since. first + second == the whole stream.
        let snap = recovered.metrics();
        prop_assert_eq!(
            snap.counter("sase_wal_append_events_total", &[]),
            second.len() as u64
        );
        // Replay + live processing rebuilds the exact per-query counters
        // of the uninterrupted reference.
        for (name, rows) in &ref_stats {
            prop_assert_eq!(
                &mono_rows(&recovered.stats(name).unwrap()),
                rows,
                "post-recovery stats({}) diverged", name
            );
        }
    }
}

/// Registration-time diagnostics land in
/// `sase_diagnostics_emitted_total{severity=…}`, counted once per
/// registration, matching the analyzer's own report exactly.
#[test]
fn registration_diagnostics_are_counted_by_severity() {
    use sase::core::analyze::{analyze_with, Severity};
    use sase::core::functions::FunctionRegistry;
    use sase::core::lang::parse_query;

    // The interval contradiction is analyzer-detectable (error severity)
    // but plans fine — registration succeeds and the counter moves.
    const DEAD: &str = "EVENT ORDERS x WHERE x.Amount > 5 AND x.Amount < 3 \
                        RETURN x.UserId AS u";
    let reg = registry();
    let functions = FunctionRegistry::with_stdlib();
    let mut expected = [0u64; 3];
    for src in [DEAD, QUERIES[0].1] {
        for d in analyze_with(
            &parse_query(src).unwrap(),
            &reg,
            &functions,
            Default::default(),
        ) {
            expected[match d.severity {
                Severity::Info => 0,
                Severity::Warning => 1,
                Severity::Error => 2,
            }] += 1;
        }
    }
    assert!(
        expected[2] >= 1,
        "the dead query must produce an error lint"
    );

    // Single engine.
    let mut engine = Engine::new(reg.clone());
    engine.enable_metrics(&MetricsRegistry::new());
    engine.register("dead", DEAD).unwrap();
    engine.register(QUERIES[0].0, QUERIES[0].1).unwrap();
    let snap = EventProcessor::metrics(&engine);
    for (i, sev) in ["info", "warning", "error"].iter().enumerate() {
        assert_eq!(
            snap.counter("sase_diagnostics_emitted_total", &[("severity", sev)]),
            expected[i],
            "engine diagnostics counter for severity={sev}"
        );
    }

    // Sharded deployment: build-time registrations accumulate in the
    // builder, live registrations count directly — and worker-side
    // installs never double count.
    let mut builder = ShardedEngineBuilder::new(reg);
    builder.set_metrics(true);
    builder.register("dead", DEAD).unwrap();
    let mut sharded = builder.build(2).unwrap();
    sharded.register(QUERIES[0].0, QUERIES[0].1).unwrap();
    let snap = EventProcessor::metrics(&sharded);
    for (i, sev) in ["info", "warning", "error"].iter().enumerate() {
        assert_eq!(
            snap.counter("sase_diagnostics_emitted_total", &[("severity", sev)]),
            expected[i],
            "sharded diagnostics counter for severity={sev}"
        );
    }
}

/// `metrics()` merges worker-local registries deterministically: two
/// back-to-back snapshots of a quiescent sharded deployment render to
/// byte-identical Prometheus expositions.
#[test]
fn sharded_snapshot_merge_is_deterministic() {
    let reg = registry();
    let mut builder = ShardedEngineBuilder::new(reg.clone());
    builder.set_sharding(ShardingMode::ByPartitionKey);
    builder.set_metrics(true);
    for (name, src) in QUERIES {
        builder.register(name, src).unwrap();
    }
    let mut sharded = builder.build(4).unwrap();
    let events = materialize(
        &reg,
        &(0..40)
            .map(|i| RawEvent {
                ty: i % 3,
                ts_gap: 1,
                user: (i % 5) as i64,
                amount: (i % 4) as i64,
            })
            .collect::<Vec<_>>(),
    );
    drive(&mut sharded, &events);
    let a = sase::render_prometheus(&EventProcessor::metrics(&sharded));
    let b = sase::render_prometheus(&EventProcessor::metrics(&sharded));
    assert_eq!(a, b, "quiescent snapshots must merge deterministically");
    assert!(a.contains("sase_shard_events_routed_total"));
    assert!(a.contains("sase_query_events_processed"));
}
