//! Crash-recovery differentials: checkpoint mid-stream, drop the engine,
//! recover from log + checkpoint, finish the stream — the emitted complex
//! events must be **byte-for-byte identical** to an uninterrupted
//! reference run. Asserted for the full retail [`SaseSystem`] deployment
//! and for the sharded engine deployment, including derived `INTO`
//! streams, plus kill-and-recover with a torn log tail and a randomized
//! crash-point property.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use sase::core::engine::Engine;
use sase::core::error::Result as CoreResult;
use sase::core::event::{retail_registry, Event, SchemaRegistry};
use sase::core::output::ComplexEvent;
use sase::core::value::{Value, ValueType};
use sase::rfid::noise::NoiseModel;
use sase::rfid::scenario::RetailScenario;
use sase::store::StoreError;
use sase::system::durable::preregister_derived;
use sase::system::{
    DurableEngine, DurableError, DurableOptions, DurableSystem, SaseSystem, ShardedEngineBuilder,
};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sase-recovery-{}-{label}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn render(out: &[ComplexEvent]) -> Vec<String> {
    out.iter().map(|d| d.to_string()).collect()
}

fn small_segments() -> DurableOptions {
    DurableOptions {
        segment_bytes: 512, // force multi-segment logs in every test
        ..DurableOptions::default()
    }
}

// ---------------------------------------------------------------------------
// Full SaseSystem deployment
// ---------------------------------------------------------------------------

/// Standing queries for the system differential: the paper's Q1 (with the
/// `_retrieveLocation` DB lookup) plus a derived-stream chain. (Builtins
/// whose *return value* depends on database state, like `_updateLocation`,
/// are deliberately absent: replay re-invokes host functions, so
/// byte-identical replay requires args-deterministic returns — see the
/// `sase-system::durable` docs.)
fn register_system_queries(sys: &mut SaseSystem) -> CoreResult<()> {
    sys.register_query("shoplifting", sase::system::queries::SHOPLIFTING)?;
    sys.register_query(
        "moves_producer",
        "EVENT SEQ(SHELF_READING x, SHELF_READING y) \
         WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId WITHIN 2000 \
         RETURN y.TagId AS tag, y.AreaId AS area INTO Moves",
    )?;
    sys.register_query("moves_watch", "FROM moves EVENT MOVES m RETURN m.tag AS t")?;
    Ok(())
}

fn retail_system() -> SaseSystem {
    let sys = SaseSystem::retail(NoiseModel::perfect(), 9, 40).unwrap();
    sys.schemas()
        .register(
            "moves",
            &[("tag", ValueType::Int), ("area", ValueType::Int)],
        )
        .unwrap();
    sys
}

#[test]
fn durable_system_crash_recovery_differential() {
    let mut reference = retail_system();
    register_system_queries(&mut reference).unwrap();
    let scenario = RetailScenario::build(reference.config(), 42, 3, 2, 1);
    let duration = scenario.duration;
    let mut ref_out: Vec<String> = Vec::new();
    for _ in 0..duration {
        ref_out.extend(render(&reference.tick(Some(&scenario)).unwrap().detections));
    }
    assert!(!ref_out.is_empty(), "scenario must produce detections");

    let dir = tmp_dir("system");
    let mut durable = DurableSystem::create(&dir, retail_system(), small_segments()).unwrap();
    register_system_queries(durable.system_mut()).unwrap();

    let ckpt_at = duration / 3;
    let crash_at = 2 * duration / 3;
    assert!(ckpt_at > 0 && crash_at > ckpt_at && crash_at < duration);

    let mut live: Vec<String> = Vec::new();
    let mut since_ckpt: Vec<String> = Vec::new();
    for t in 0..duration {
        let r = durable.tick(Some(&scenario)).unwrap();
        let rendered = render(&r.detections);
        if t < ckpt_at {
            live.extend(rendered);
        } else {
            since_ckpt.extend(rendered);
        }
        if t + 1 == ckpt_at {
            durable.checkpoint().unwrap();
        }
        if t + 1 == crash_at {
            // The engine dies: queries, AIS stacks, negation buffers,
            // stream clocks — all gone. Devices and cleaning keep running.
            durable.crash_engine();
            let report = durable.recover_engine(register_system_queries).unwrap();
            assert_eq!(report.checkpoint_seq, Some(ckpt_at));
            assert_eq!(report.records_replayed, crash_at - ckpt_at);
            // Deterministic replay: recovery re-emits exactly what the
            // engine emitted live since the checkpoint.
            assert_eq!(render(&report.emissions), since_ckpt);
            live.append(&mut since_ckpt);
        }
    }
    live.extend(since_ckpt);

    assert_eq!(ref_out, live, "recovered run must match uninterrupted run");
    // The derived-stream chain actually fired across the crash.
    assert!(
        live.iter().any(|d| d.contains("[moves_watch@")),
        "derived stream consumer must have emitted"
    );
    assert!(durable.log().segments().len() > 1, "log must have rolled");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durable_system_full_process_restart() {
    // The whole process dies (not just the engine): a new process builds a
    // fresh SaseSystem and reattaches to the on-disk deployment.
    let mut reference = retail_system();
    register_system_queries(&mut reference).unwrap();
    let scenario = RetailScenario::build(reference.config(), 42, 3, 2, 1);
    let duration = scenario.duration;
    let mut ref_out: Vec<String> = Vec::new();
    for _ in 0..duration {
        ref_out.extend(render(&reference.tick(Some(&scenario)).unwrap().detections));
    }

    let dir = tmp_dir("restart");
    let mut durable = DurableSystem::create(&dir, retail_system(), small_segments()).unwrap();
    register_system_queries(durable.system_mut()).unwrap();
    let ckpt_at = duration / 2;
    let crash_at = 3 * duration / 4;
    let mut live: Vec<String> = Vec::new();
    let mut since_ckpt: Vec<String> = Vec::new();
    for t in 0..crash_at {
        let r = durable.tick(Some(&scenario)).unwrap();
        let rendered = render(&r.detections);
        if t < ckpt_at {
            live.extend(rendered);
        } else {
            since_ckpt.extend(rendered);
        }
        if t + 1 == ckpt_at {
            durable.checkpoint().unwrap();
        }
    }
    drop(durable);

    let (mut recovered, report) = DurableSystem::recover(
        &dir,
        retail_system(),
        small_segments(),
        register_system_queries,
    )
    .unwrap();
    assert_eq!(report.checkpoint_seq, Some(ckpt_at));
    assert_eq!(report.records_replayed, crash_at - ckpt_at);
    assert!(report.replay_errors.is_empty());
    // Deterministic replay across a real restart: the tail re-emits what
    // the dead process emitted after its last checkpoint.
    assert_eq!(render(&report.emissions), since_ckpt);
    live.append(&mut since_ckpt);

    // The engine resumed from checkpoint + log; the upstream layers are
    // re-driven deterministically to the crash point (device clock plus
    // smoothing/dedup/event-generation state), then live ticks continue.
    for _ in 0..crash_at {
        recovered
            .system_mut()
            .advance_upstream(Some(&scenario))
            .unwrap();
    }
    for _ in crash_at..duration {
        live.extend(render(&recovered.tick(Some(&scenario)).unwrap().detections));
    }
    assert_eq!(recovered.log().next_seq(), duration);
    // End to end, the restarted deployment emitted exactly what the
    // uninterrupted reference run emitted.
    assert_eq!(ref_out, live);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Sharded engine deployment with derived INTO streams
// ---------------------------------------------------------------------------

const SHARDED_QUERIES: [(&str, &str); 5] = [
    (
        "producer",
        "EVENT SEQ(SHELF_READING x, SHELF_READING y) \
         WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId WITHIN 100 \
         RETURN y.TagId AS tag, y.AreaId AS area INTO Moves",
    ),
    ("mover", "FROM moves EVENT MOVES m RETURN m.tag AS t"),
    ("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag"),
    (
        "guarded",
        "EVENT SEQ(SHELF_READING a, !(COUNTER_READING c), EXIT_READING b) \
         WHERE a.TagId = b.TagId AND a.TagId = c.TagId WITHIN 60 RETURN a.TagId AS t",
    ),
    (
        "pairs",
        "EVENT SEQ(SHELF_READING a, EXIT_READING b) \
         WHERE a.TagId = b.TagId WITHIN 50 RETURN a.TagId AS tag",
    ),
];

fn sharded_registry() -> SchemaRegistry {
    let reg = retail_registry();
    reg.register(
        "moves",
        &[("tag", ValueType::Int), ("area", ValueType::Int)],
    )
    .unwrap();
    reg
}

fn synthetic_batches(reg: &SchemaRegistry, batches: usize, per_batch: usize) -> Vec<Vec<Event>> {
    let types = ["SHELF_READING", "COUNTER_READING", "EXIT_READING"];
    let mut ts = 0u64;
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ts += 1;
                    reg.build_event(
                        types[(state % 3) as usize],
                        ts,
                        vec![
                            Value::Int(((state >> 8) % 5) as i64),
                            Value::str("p"),
                            Value::Int(1 + ((state >> 16) % 3) as i64),
                        ],
                    )
                    .unwrap()
                })
                .collect()
        })
        .collect()
}

#[test]
fn sharded_engine_crash_recovery_differential() {
    // Uninterrupted single-engine reference over the union of the queries.
    let ref_reg = sharded_registry();
    let mut reference = Engine::new(ref_reg.clone());
    for (name, src) in SHARDED_QUERIES {
        reference.register(name, src).unwrap();
    }
    let ref_batches = synthetic_batches(&ref_reg, 24, 12);
    let mut ref_out: Vec<String> = Vec::new();
    for batch in &ref_batches {
        ref_out.extend(render(&reference.process_batch(batch).unwrap()));
    }
    assert!(!ref_out.is_empty());

    // Durable sharded run with a mid-stream checkpoint and a crash.
    let build_sharded = |snaps: Option<&sase::core::SnapshotSet>| {
        let reg = sharded_registry();
        if let Some(snaps) = snaps {
            preregister_derived(&reg, snaps)?;
        }
        let mut builder = ShardedEngineBuilder::new(reg);
        for (name, src) in SHARDED_QUERIES {
            builder.register(name, src)?;
        }
        builder.build(3)
    };
    let dir = tmp_dir("sharded");
    let mut durable =
        DurableEngine::create(&dir, build_sharded(None).unwrap(), small_segments()).unwrap();
    let reg = durable.engine().schemas().clone();
    let batches = synthetic_batches(&reg, 24, 12);

    let ckpt_at = 9;
    let crash_at = 17;
    let mut live: Vec<String> = Vec::new();
    let mut since_ckpt: Vec<String> = Vec::new();
    for (i, batch) in batches[..crash_at].iter().enumerate() {
        let out = render(&durable.ingest(i as u64, batch).unwrap());
        if i < ckpt_at {
            live.extend(out);
        } else {
            since_ckpt.extend(out);
        }
        if i + 1 == ckpt_at {
            durable.checkpoint().unwrap();
        }
    }
    drop(durable); // the process dies

    let (mut recovered, report) =
        DurableEngine::recover(&dir, small_segments(), build_sharded).unwrap();
    assert_eq!(report.checkpoint_seq, Some(ckpt_at as u64));
    assert_eq!(report.records_replayed, (crash_at - ckpt_at) as u64);
    // Deterministic replay through a *re-sharded* deployment: the merge
    // order reproduces the original emission sequence exactly.
    assert_eq!(render(&report.emissions), since_ckpt);
    live.extend(since_ckpt);

    for (i, batch) in batches.iter().enumerate().skip(crash_at) {
        live.extend(render(&recovered.ingest(i as u64, batch).unwrap()));
    }
    assert_eq!(
        ref_out, live,
        "sharded recovery must match the single-engine reference"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Engine-derived (not preregistered) INTO schema across recovery
// ---------------------------------------------------------------------------

#[test]
fn engine_derived_schema_survives_recovery() {
    const PRODUCER: &str =
        "EVENT EXIT_READING z RETURN z.TagId AS tag, z.AreaId AS area INTO alerts";
    const CONSUMER: &str = "FROM alerts EVENT ALERTS a RETURN a.tag AS t";
    let exit = |reg: &SchemaRegistry, ts: u64, tag: i64| {
        reg.build_event(
            "EXIT_READING",
            ts,
            vec![Value::Int(tag), Value::str("p"), Value::Int(4)],
        )
        .unwrap()
    };

    // Reference: the consumer registers only after the first emission has
    // derived the `alerts` schema from data.
    let ref_reg = retail_registry();
    let mut reference = Engine::new(ref_reg.clone());
    reference.register("producer", PRODUCER).unwrap();
    let mut ref_out = render(&reference.process(&exit(&ref_reg, 1, 7)).unwrap());
    reference.register("consumer", CONSUMER).unwrap();
    ref_out.extend(render(&reference.process(&exit(&ref_reg, 2, 8)).unwrap()));
    ref_out.extend(render(&reference.process(&exit(&ref_reg, 3, 9)).unwrap()));

    // Durable run: crash after the checkpoint; the recovered registry has
    // no `alerts` type until preregister_derived supplies it — without it
    // the consumer could not even be re-registered.
    let dir = tmp_dir("derived");
    let reg = retail_registry();
    let mut engine = Engine::new(reg.clone());
    engine.register("producer", PRODUCER).unwrap();
    let mut durable = DurableEngine::create(&dir, engine, small_segments()).unwrap();
    let mut live = render(&durable.ingest(0, &[exit(&reg, 1, 7)]).unwrap());
    durable.engine_mut().register("consumer", CONSUMER).unwrap();
    live.extend(render(&durable.ingest(1, &[exit(&reg, 2, 8)]).unwrap()));
    durable.checkpoint().unwrap();
    drop(durable);

    let (mut recovered, report) = DurableEngine::recover(&dir, small_segments(), |snaps| {
        let reg = retail_registry();
        assert!(reg.type_id("alerts").is_none());
        if let Some(snaps) = snaps {
            preregister_derived(&reg, snaps)?;
        }
        assert!(reg.type_id("alerts").is_some(), "derived schema recovered");
        let mut e = Engine::new(reg);
        e.register("producer", PRODUCER)?;
        e.register("consumer", CONSUMER)?;
        Ok(e)
    })
    .unwrap();
    assert_eq!(report.records_replayed, 0);
    let reg = recovered.engine().schemas().clone();
    live.extend(render(&recovered.ingest(2, &[exit(&reg, 3, 9)]).unwrap()));
    assert_eq!(ref_out, live);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Kill-and-recover with a torn log tail
// ---------------------------------------------------------------------------

/// Run the `guarded` + `pairs` queries over scripted batches through a
/// durable engine, kill it leaving a torn tail of `cut_back` bytes, then
/// recover and re-send whatever the log lost. Returns Ok(collected
/// emissions) or the typed recovery error.
fn kill_and_recover(
    dir: &PathBuf,
    batches: &[Vec<Event>],
    ckpt_at: usize,
    cut_back: u64,
) -> Result<Vec<String>, DurableError> {
    let build = |snaps: Option<&sase::core::SnapshotSet>| {
        let reg = sharded_registry();
        if let Some(snaps) = snaps {
            preregister_derived(&reg, snaps)?;
        }
        let mut e = Engine::new(reg);
        for (name, src) in SHARDED_QUERIES {
            e.register(name, src)?;
        }
        Ok(e)
    };
    let opts = DurableOptions {
        sync_each_batch: false, // the host owns the commit cadence
        ..small_segments()
    };
    let mut durable = DurableEngine::create(dir, build(None).unwrap(), opts)?;
    let mut live_by_batch: Vec<Vec<String>> = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        live_by_batch.push(render(&durable.ingest(i as u64, batch)?));
        if i + 1 == ckpt_at {
            durable.checkpoint()?;
        }
    }
    let seg = durable.log().segments().last().unwrap().clone();
    drop(durable); // kill: buffered tail may be torn

    // Tear the tail.
    let len = std::fs::metadata(&seg.path).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&seg.path)
        .unwrap();
    f.set_len(len.saturating_sub(cut_back)).unwrap();
    drop(f);

    let (mut recovered, report) = DurableEngine::recover(dir, opts, build)?;
    let survived = recovered.log().next_seq() as usize;
    assert!(survived <= batches.len());

    // Emissions once each: live up to the checkpoint, replay for
    // [checkpoint, survived), re-send for the torn-off [survived, end).
    let mut total: Vec<String> = live_by_batch[..ckpt_at.min(survived)]
        .iter()
        .flatten()
        .cloned()
        .collect();
    total.extend(render(&report.emissions));
    for (i, batch) in batches.iter().enumerate().skip(survived) {
        total.extend(render(&recovered.ingest(i as u64, batch)?));
    }
    Ok(total)
}

#[test]
fn kill_and_recover_torn_tail() {
    let reg = sharded_registry();
    let batches = synthetic_batches(&reg, 20, 10);
    let mut reference = Engine::new(reg.clone());
    for (name, src) in SHARDED_QUERIES {
        reference.register(name, src).unwrap();
    }
    let ref_batches = synthetic_batches(&sharded_registry(), 20, 10);
    let mut ref_out: Vec<String> = Vec::new();
    for batch in &ref_batches {
        ref_out.extend(render(&reference.process_batch(batch).unwrap()));
    }
    assert!(!ref_out.is_empty());

    let dir = tmp_dir("killrecover");
    let total = kill_and_recover(&dir, &batches, 8, 7).unwrap();
    assert_eq!(ref_out, total, "no lost and no duplicated complex events");
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized crash points: any checkpoint position and any torn-tail
    /// depth either recovers to the exact reference emission sequence or
    /// fails with a typed store error (cut reaching below the checkpoint)
    /// — never panics, never duplicates, never loses a complex event.
    #[test]
    fn random_crash_points_recover_exactly(
        ckpt_at in 1usize..15,
        cut_back in 0u64..2000,
        per_batch in 4usize..12,
    ) {
        let reg = sharded_registry();
        let batches = synthetic_batches(&reg, 15, per_batch);
        let mut reference = Engine::new(reg.clone());
        for (name, src) in SHARDED_QUERIES {
            reference.register(name, src).unwrap();
        }
        let ref_batches = synthetic_batches(&sharded_registry(), 15, per_batch);
        let mut ref_out: Vec<String> = Vec::new();
        for batch in &ref_batches {
            ref_out.extend(render(&reference.process_batch(batch).unwrap()));
        }

        let dir = tmp_dir("prop");
        match kill_and_recover(&dir, &batches, ckpt_at, cut_back) {
            Ok(total) => prop_assert_eq!(ref_out, total),
            Err(DurableError::Store(StoreError::Corrupt { .. })) => {
                // Typed: the cut reached committed pre-checkpoint records.
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
