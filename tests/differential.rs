//! Differential testing: every planner configuration must produce the same
//! match set on the same stream — the optimizations (PAIS, window pushdown,
//! predicate pushdown, indexed negation) are performance-only.
//!
//! Two layers of coverage:
//!
//! * proptest properties driving **random** streams (both realistic
//!   generator workloads and fully arbitrary event soups) through the full
//!   17-configuration matrix, ≥100 cases each;
//! * the seed's deterministic large-stream regressions, kept as anchors.

use proptest::prelude::*;

use sase::core::functions::FunctionRegistry;
use sase::core::lang::parse_query;
use sase::core::plan::{Planner, PlannerOptions, SequenceStrategy};
use sase::core::runtime::QueryRuntime;
use sase::core::value::Value;
use sase::core::{Event, SchemaRegistry};
use sase::rfid::generator::{generate, registry_for, SyntheticConfig};

fn all_configs() -> Vec<PlannerOptions> {
    let mut out = Vec::new();
    for partition in [true, false] {
        for window in [true, false] {
            for single in [true, false] {
                for neg_idx in [true, false] {
                    out.push(PlannerOptions {
                        pushdown_partition: partition,
                        pushdown_window: window,
                        pushdown_single_event_predicates: single,
                        indexed_negation: neg_idx,
                        strategy: SequenceStrategy::Ssc,
                    });
                }
            }
        }
    }
    out.push(PlannerOptions::naive());
    out
}

fn canonical_matches(
    registry: &SchemaRegistry,
    events: &[Event],
    query: &str,
    options: PlannerOptions,
) -> Vec<Vec<u64>> {
    let planner = Planner::new(registry.clone(), FunctionRegistry::with_stdlib());
    let q = parse_query(query).unwrap();
    let plan = planner.plan_with(&q, options).unwrap();
    let mut rt = QueryRuntime::new("diff", plan);
    let out = rt.process_all(events).unwrap();
    let mut canon: Vec<Vec<u64>> = out
        .iter()
        .map(|ce| ce.events.iter().map(|e| e.timestamp()).collect())
        .collect();
    canon.sort();
    canon
}

/// Assert the whole config matrix agrees on one stream.
fn assert_configs_agree(registry: &SchemaRegistry, stream: &[Event], query: &str) {
    let reference = canonical_matches(registry, stream, query, PlannerOptions::default());
    for options in all_configs() {
        let got = canonical_matches(registry, stream, query, options);
        assert_eq!(reference, got, "{options:?} disagrees on {query}");
    }
}

/// The query shapes under differential test: sequences, negation,
/// equivalence shorthand, mixed predicates, ANY patterns, and an
/// unbounded window.
const QUERIES: [&str; 7] = [
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId WITHIN 120",
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) \
     WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 150",
    "EVENT SEQ(SHELF_READING a, COUNTER_READING b, EXIT_READING c) \
     WHERE [TagId] WITHIN 200",
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
     WHERE x.TagId = z.TagId AND x.AreaId != z.AreaId AND z.AreaId >= 2 WITHIN 100",
    "EVENT SEQ(ANY(SHELF_READING, COUNTER_READING) a, EXIT_READING b) \
     WHERE a.TagId = b.TagId WITHIN 80",
    "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) \
     WHERE x.TagId = y.TagId AND x.TagId = z.TagId AND y.AreaId = 3 WITHIN 150",
    "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId",
];

// ---------------------------------------------------------------------------
// Property layer: random streams, ≥100 cases per property
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(112))]

    /// Every planner configuration agrees with every other on realistic
    /// generator workloads with randomized seed, size, skew, and query.
    #[test]
    fn configs_agree_on_random_generator_streams(
        seed in any::<u64>(),
        events in 80usize..280,
        partitions in 2usize..10,
        qidx in 0usize..7,
    ) {
        let cfg = SyntheticConfig::retail(seed, events, partitions);
        let registry = registry_for(&cfg);
        let stream = generate(&registry, &cfg);
        assert_configs_agree(&registry, &stream, QUERIES[qidx]);
    }
}

#[derive(Debug, Clone)]
struct RawEvent {
    ty: usize, // 0 = SHELF, 1 = COUNTER, 2 = EXIT
    ts_gap: u64,
    tag: i64,
    area: i64,
}

fn arb_stream(max_len: usize) -> impl Strategy<Value = Vec<RawEvent>> {
    prop::collection::vec(
        (0usize..3, 1u64..4, 0i64..4, 1i64..5).prop_map(|(ty, ts_gap, tag, area)| RawEvent {
            ty,
            ts_gap,
            tag,
            area,
        }),
        0..max_len,
    )
}

fn materialize(registry: &SchemaRegistry, raw: &[RawEvent]) -> Vec<Event> {
    const TYPES: [&str; 3] = ["SHELF_READING", "COUNTER_READING", "EXIT_READING"];
    let mut ts = 0;
    raw.iter()
        .map(|r| {
            ts += r.ts_gap;
            registry
                .build_event(
                    TYPES[r.ty],
                    ts,
                    vec![Value::Int(r.tag), Value::str("p"), Value::Int(r.area)],
                )
                .unwrap()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(112))]

    /// Every planner configuration agrees on fully arbitrary event soups
    /// (dense collisions, tiny tag/area domains) for every query shape.
    #[test]
    fn configs_agree_on_arbitrary_streams(raw in arb_stream(60), qidx in 0usize..7) {
        let registry = sase::core::event::retail_registry();
        let stream = materialize(&registry, &raw);
        assert_configs_agree(&registry, &stream, QUERIES[qidx]);
    }
}

// ---------------------------------------------------------------------------
// Deterministic layer: the seed's large-stream regression anchors
// ---------------------------------------------------------------------------

fn check_query(query: &str, seeds: &[u64], events: usize, partitions: usize) {
    for &seed in seeds {
        let cfg = SyntheticConfig::retail(seed, events, partitions);
        let registry = registry_for(&cfg);
        let stream = generate(&registry, &cfg);
        let reference = canonical_matches(&registry, &stream, query, PlannerOptions::default());
        for options in all_configs() {
            let got = canonical_matches(&registry, &stream, query, options);
            assert_eq!(
                reference, got,
                "seed {seed}: {options:?} disagrees on {query}"
            );
        }
        assert!(
            !reference.is_empty(),
            "seed {seed}: workload produced no matches for {query} — weak test"
        );
    }
}

#[test]
fn differential_two_step_equality() {
    check_query(QUERIES[0], &[1, 2, 3], 1_500, 8);
}

#[test]
fn differential_q1_with_negation() {
    check_query(QUERIES[1], &[4, 5, 6], 1_500, 6);
}

#[test]
fn differential_equivalence_shorthand_three_steps() {
    check_query(QUERIES[2], &[7, 8], 1_200, 5);
}

#[test]
fn differential_mixed_predicates() {
    check_query(QUERIES[3], &[9, 10], 1_500, 6);
}

#[test]
fn differential_any_pattern() {
    check_query(QUERIES[4], &[11, 12], 1_200, 6);
}

#[test]
fn differential_negation_with_candidate_filter() {
    check_query(QUERIES[5], &[13, 14], 1_500, 5);
}

#[test]
fn differential_unbounded_window() {
    // No WITHIN clause at all: matches accumulate over the whole stream.
    check_query(QUERIES[6], &[15], 400, 10);
}
