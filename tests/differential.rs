//! Differential testing: every planner configuration must produce the same
//! match set on the same stream — the optimizations (PAIS, window pushdown,
//! predicate pushdown, indexed negation) are performance-only.

use sase::core::functions::FunctionRegistry;
use sase::core::lang::parse_query;
use sase::core::plan::{Planner, PlannerOptions, SequenceStrategy};
use sase::core::runtime::QueryRuntime;
use sase::core::{Event, SchemaRegistry};
use sase::rfid::generator::{generate, registry_for, SyntheticConfig};

fn all_configs() -> Vec<PlannerOptions> {
    let mut out = Vec::new();
    for partition in [true, false] {
        for window in [true, false] {
            for single in [true, false] {
                for neg_idx in [true, false] {
                    out.push(PlannerOptions {
                        pushdown_partition: partition,
                        pushdown_window: window,
                        pushdown_single_event_predicates: single,
                        indexed_negation: neg_idx,
                        strategy: SequenceStrategy::Ssc,
                    });
                }
            }
        }
    }
    out.push(PlannerOptions::naive());
    out
}

fn canonical_matches(
    registry: &SchemaRegistry,
    events: &[Event],
    query: &str,
    options: PlannerOptions,
) -> Vec<Vec<u64>> {
    let planner = Planner::new(registry.clone(), FunctionRegistry::with_stdlib());
    let q = parse_query(query).unwrap();
    let plan = planner.plan_with(&q, options).unwrap();
    let mut rt = QueryRuntime::new("diff", plan);
    let out = rt.process_all(events).unwrap();
    let mut canon: Vec<Vec<u64>> = out
        .iter()
        .map(|ce| ce.events.iter().map(|e| e.timestamp()).collect())
        .collect();
    canon.sort();
    canon
}

fn check_query(query: &str, seeds: &[u64], events: usize, partitions: usize) {
    for &seed in seeds {
        let cfg = SyntheticConfig::retail(seed, events, partitions);
        let registry = registry_for(&cfg);
        let stream = generate(&registry, &cfg);
        let reference =
            canonical_matches(&registry, &stream, query, PlannerOptions::default());
        for options in all_configs() {
            let got = canonical_matches(&registry, &stream, query, options);
            assert_eq!(
                reference, got,
                "seed {seed}: {options:?} disagrees on {query}"
            );
        }
        assert!(
            !reference.is_empty(),
            "seed {seed}: workload produced no matches for {query} — weak test"
        );
    }
}

#[test]
fn differential_two_step_equality() {
    check_query(
        "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId WITHIN 120",
        &[1, 2, 3],
        1_500,
        8,
    );
}

#[test]
fn differential_q1_with_negation() {
    check_query(
        "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) \
         WHERE x.TagId = y.TagId AND x.TagId = z.TagId WITHIN 150",
        &[4, 5, 6],
        1_500,
        6,
    );
}

#[test]
fn differential_equivalence_shorthand_three_steps() {
    check_query(
        "EVENT SEQ(SHELF_READING a, COUNTER_READING b, EXIT_READING c) \
         WHERE [TagId] WITHIN 200",
        &[7, 8],
        1_200,
        5,
    );
}

#[test]
fn differential_mixed_predicates() {
    check_query(
        "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
         WHERE x.TagId = z.TagId AND x.AreaId != z.AreaId AND z.AreaId >= 2 WITHIN 100",
        &[9, 10],
        1_500,
        6,
    );
}

#[test]
fn differential_any_pattern() {
    check_query(
        "EVENT SEQ(ANY(SHELF_READING, COUNTER_READING) a, EXIT_READING b) \
         WHERE a.TagId = b.TagId WITHIN 80",
        &[11, 12],
        1_200,
        6,
    );
}

#[test]
fn differential_negation_with_candidate_filter() {
    check_query(
        "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z) \
         WHERE x.TagId = y.TagId AND x.TagId = z.TagId AND y.AreaId = 3 WITHIN 150",
        &[13, 14],
        1_500,
        5,
    );
}

#[test]
fn differential_unbounded_window() {
    // No WITHIN clause at all: matches accumulate over the whole stream.
    check_query(
        "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE x.TagId = z.TagId",
        &[15],
        400,
        10,
    );
}
