//! Experiments D1–D3 (DESIGN.md): the full §4 demonstration, asserted
//! against scenario ground truth across noise levels and seeds.

use sase::core::value::Value;
use sase::rfid::noise::NoiseModel;
use sase::rfid::scenario::RetailScenario;
use sase::system::SaseSystem;

fn flagged_items(sys: &SaseSystem, query: &str) -> Vec<i64> {
    let mut v: Vec<i64> = sys
        .detections_for(query)
        .iter()
        .filter_map(|d| d.value("x.TagId").and_then(Value::as_int))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// D1 — shoplifting detection is exact (no misses, no false accusations)
/// with perfect devices, across several scenario seeds.
#[test]
fn d1_shoplifting_exact_with_perfect_devices() {
    for seed in [1u64, 2, 3, 4, 5] {
        let mut sys = SaseSystem::retail(NoiseModel::perfect(), seed, 40).unwrap();
        sys.register_demo_queries().unwrap();
        let scenario = RetailScenario::build(sys.config(), seed * 31, 5, 3, 1);
        sys.run_scenario(&scenario).unwrap();
        assert_eq!(
            flagged_items(&sys, "shoplifting"),
            scenario.truth.shoplifted,
            "seed {seed}"
        );
    }
}

/// D1' — detection survives realistic device noise thanks to the cleaning
/// stack.
#[test]
fn d1_shoplifting_with_realistic_noise() {
    for seed in [10u64, 20, 30] {
        let mut sys = SaseSystem::retail(NoiseModel::realistic(), seed, 40).unwrap();
        sys.register_demo_queries().unwrap();
        let scenario = RetailScenario::build(sys.config(), seed + 7, 6, 3, 0);
        sys.run_scenario(&scenario).unwrap();
        let flagged = flagged_items(&sys, "shoplifting");
        for thief in &scenario.truth.shoplifted {
            assert!(flagged.contains(thief), "seed {seed}: missed {thief}");
        }
        for honest in &scenario.truth.honest {
            assert!(
                !flagged.contains(honest),
                "seed {seed}: false accusation of {honest}"
            );
        }
    }
}

/// D2 — misplaced inventory: the monitor fires with the movement-history
/// database lookup joined in.
#[test]
fn d2_misplaced_inventory_with_history_lookup() {
    let mut sys = SaseSystem::retail(NoiseModel::perfect(), 77, 40).unwrap();
    sys.register_demo_queries().unwrap();
    // Every product's home shelf is area 1 for this monitor.
    sys.register_misplaced_query("misplaced", "cereal", 1)
        .unwrap();

    // Script: item 5 ("cereal") stocked on shelf 1, later misplaced to 2.
    let cfg = sys.config().clone();
    let tag = cfg.make_tag(5);
    sys.simulator().place_tag(tag, 1);
    for _ in 0..4 {
        sys.tick(None).unwrap();
    }
    assert!(
        sys.detections_for("misplaced").is_empty(),
        "home shelf is fine"
    );
    sys.simulator().place_tag(tag, 2);
    for _ in 0..4 {
        sys.tick(None).unwrap();
    }
    let hits = sys.detections_for("misplaced");
    assert!(!hits.is_empty());
    let history = hits[0]
        .value("_movementHistory(x.TagId)")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(
        history.contains("in area 1"),
        "history shows the home shelf: {history}"
    );
}

/// D3 — archiving rules keep the event database consistent with the floor:
/// after the scenario, every remaining item's current DB location matches
/// the simulator's ground truth.
#[test]
fn d3_archiving_rules_mirror_ground_truth() {
    let mut sys = SaseSystem::retail(NoiseModel::perfect(), 13, 40).unwrap();
    sys.register_demo_queries().unwrap();
    let scenario = RetailScenario::build(sys.config(), 41, 4, 2, 2);
    sys.run_scenario(&scenario).unwrap();

    let cfg = sys.config().clone();
    for &item in &scenario.truth.misplaced {
        let sim_area = sys.simulator().tag_area(cfg.make_tag(item as u64));
        let db_area = sys
            .track_and_trace()
            .current_location(item)
            .unwrap()
            .map(|s| s.area);
        assert_eq!(sim_area, db_area, "item {item}");
    }
    // Departed items' last stay is the exit.
    for &item in scenario
        .truth
        .honest
        .iter()
        .chain(&scenario.truth.shoplifted)
    {
        let hist = sys.track_and_trace().locations().history(item).unwrap();
        assert_eq!(
            hist.last().map(|s| s.area),
            Some(4),
            "item {item} last seen at the exit: {hist:?}"
        );
    }
}

/// D3' — the Q2-form location_change rule and the complete archive rule
/// agree: Q2 fires only on actual area changes.
#[test]
fn d3_q2_fires_only_on_area_changes() {
    let mut sys = SaseSystem::retail(NoiseModel::perfect(), 99, 40).unwrap();
    sys.register_demo_queries().unwrap();
    let cfg = sys.config().clone();
    let tag = cfg.make_tag(3);
    sys.simulator().place_tag(tag, 1);
    for _ in 0..6 {
        sys.tick(None).unwrap();
    }
    assert!(
        sys.detections_for("location_change").is_empty(),
        "no move yet"
    );
    sys.simulator().place_tag(tag, 2);
    for _ in 0..4 {
        sys.tick(None).unwrap();
    }
    assert!(!sys.detections_for("location_change").is_empty());
}

/// D5 — the complete dataflow is observable: raw readings become events,
/// events become detections, detections reach every UI window.
#[test]
fn d5_dataflow_taps() {
    let mut sys = SaseSystem::retail(NoiseModel::realistic(), 3, 40).unwrap();
    sys.register_demo_queries().unwrap();
    let scenario = RetailScenario::build(sys.config(), 8, 3, 1, 0);
    sys.run_scenario(&scenario).unwrap();

    let stats = sys.cleaning_stats();
    assert!(stats.anomaly.seen > 0);
    assert!(stats.events.generated > 0);
    assert!(!sys.cleaning_tap().is_empty());

    let text = sys.ui_report().render();
    assert!(text.contains("Message Results"));
    assert!(text.contains("shoplifting detected"));
    assert!(text.contains("_retrieveLocation"));
    assert!(text.contains("READING@"));
    // "Present Queries" shows the canonical query texts (Fig 3 top-left).
    assert!(text.contains("SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)"));
}

/// Restocked inventory must not trip any monitoring query.
#[test]
fn restocking_causes_no_false_alarms() {
    let mut sys = SaseSystem::retail(NoiseModel::perfect(), 31, 40).unwrap();
    sys.register_demo_queries().unwrap();
    let scenario = RetailScenario::build_full(sys.config(), 17, 3, 2, 0, 4);
    sys.run_scenario(&scenario).unwrap();
    let flagged = flagged_items(&sys, "shoplifting");
    assert_eq!(flagged, scenario.truth.shoplifted);
    for restocked in &scenario.truth.restocked {
        assert!(!flagged.contains(restocked));
        // The archive rule recorded their shelf arrival.
        let cur = sys.track_and_trace().current_location(*restocked).unwrap();
        assert!(cur.is_some(), "restocked item {restocked} archived");
    }
}
