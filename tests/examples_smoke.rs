//! Smoke tests over the examples: they must build, and the non-interactive
//! ones must run to completion (each example asserts its own invariants
//! internally, so a clean exit is a meaningful check).

use std::path::Path;
use std::process::Command;

fn cargo() -> Command {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let mut cmd = Command::new(cargo);
    cmd.current_dir(Path::new(env!("CARGO_MANIFEST_DIR")));
    cmd
}

#[test]
fn all_examples_build() {
    // The run tests below cover four examples; this additionally gates the
    // interactive `repl`, which nothing runs non-interactively.
    let out = cargo()
        .args(["build", "--examples", "--quiet"])
        .output()
        .expect("cargo runs");
    assert!(
        out.status.success(),
        "examples failed to build:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn run_example(name: &str) -> String {
    run_example_with(name, &[])
}

fn run_example_with(name: &str, args: &[&str]) -> String {
    let out = cargo()
        .args(["run", "--quiet", "--example", name, "--"])
        .args(args)
        .output()
        .expect("cargo runs");
    assert!(
        out.status.success(),
        "example `{name}` exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn cleaning_pipeline_example_runs() {
    let stdout = run_example("cleaning_pipeline");
    assert!(stdout.contains("event out:"), "produces cleaned events");
    assert!(
        stdout.contains("per-layer statistics"),
        "reports layer stats"
    );
}

#[test]
fn quickstart_example_runs() {
    let stdout = run_example("quickstart");
    assert!(stdout.contains("ALERT"), "emits the shoplifting alert");
}

#[test]
fn retail_store_example_runs() {
    let stdout = run_example("retail_store");
    assert!(
        stdout.contains("shoplifting alerts"),
        "renders the alerts window"
    );
}

#[test]
fn serve_example_self_checks() {
    // Drives all three wire protocols (line, WebSocket push, HTTP) against
    // an ephemeral port and exits nonzero on any divergence.
    let stdout = run_example_with("serve", &["--test"]);
    assert!(
        stdout.contains("serve self-check passed"),
        "self-check must report success:\n{stdout}"
    );
}

#[test]
fn track_and_trace_example_runs() {
    let stdout = run_example("track_and_trace");
    assert!(!stdout.is_empty(), "prints trace output");
}
