//! Analyzer smoke over the in-repo query corpus: every SASE query string
//! that appears in `examples/` or `tests/paper_queries.rs` must come out of
//! `sase_core::analyze` with zero error-severity diagnostics. This is the
//! CI gate that keeps the shipped corpus clean and, symmetrically, keeps
//! the analyzer free of false positives on real queries.

use std::path::{Path, PathBuf};

use sase::core::analyze::{analyze_with, Severity};
use sase::core::event::retail_registry;
use sase::core::functions::FunctionRegistry;
use sase::core::lang::parse_query;
use sase::core::time::TimeScale;
use sase::core::value::Value;

/// Extract the contents of every double-quoted string literal in a Rust
/// source file, resolving the escapes query strings actually use
/// (`\"`, `\\`, `\n`, `\t`, and the backslash-newline line splice).
fn string_literals(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut in_line_comment = false;
    while let Some(c) = chars.next() {
        if in_line_comment {
            if c == '\n' {
                in_line_comment = false;
            }
            continue;
        }
        if c == '/' && chars.peek() == Some(&'/') {
            in_line_comment = true;
            continue;
        }
        if c != '"' {
            continue;
        }
        let mut lit = String::new();
        loop {
            match chars.next() {
                None => return out, // unterminated; file is not ours to judge
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('n') => lit.push('\n'),
                    Some('t') => lit.push('\t'),
                    Some('\\') => lit.push('\\'),
                    Some('"') => lit.push('"'),
                    Some('\'') => lit.push('\''),
                    Some('\n') => {
                        // Line splice: swallow the following indentation.
                        while chars.peek().is_some_and(|c| c.is_whitespace()) {
                            chars.next();
                        }
                        lit.push(' ');
                    }
                    Some(other) => {
                        lit.push('\\');
                        lit.push(other);
                    }
                    None => return out,
                },
                Some(other) => lit.push(other),
            }
        }
        out.push(lit);
    }
    out
}

fn corpus_files() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("tests/paper_queries.rs")];
    for entry in std::fs::read_dir(root.join("examples")).expect("examples/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    files.sort();
    files
}

fn queries_in(path: &Path) -> Vec<String> {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    string_literals(&src)
        .into_iter()
        .filter(|s| {
            let t = s.trim_start();
            t.starts_with("EVENT") || t.starts_with("FROM")
        })
        .filter(|s| parse_query(s).is_ok())
        .collect()
}

#[test]
fn corpus_queries_are_free_of_error_diagnostics() {
    let registry = retail_registry();
    let functions = FunctionRegistry::with_stdlib();

    let mut corpus: Vec<(PathBuf, String)> = Vec::new();
    for file in corpus_files() {
        for q in queries_in(&file) {
            corpus.push((file.clone(), q));
        }
    }
    assert!(
        corpus.len() >= 6,
        "corpus extraction broke: only {} queries found",
        corpus.len()
    );

    // Host functions the corpus calls (e.g. `_retrieveLocation`) are
    // registered by the examples at run time; stand-ins keep the planner
    // satisfied so the analyzer can do its real work.
    for (_, q) in &corpus {
        let query = parse_query(q).expect("filtered to parsable");
        for f in query.called_functions() {
            if functions.get(&f).is_none() {
                functions.register_fn(&f, None, |args| {
                    Ok(args.first().cloned().unwrap_or(Value::Int(0)))
                });
            }
        }
    }

    let mut failures = Vec::new();
    for (file, q) in &corpus {
        let query = parse_query(q).expect("filtered to parsable");
        let errors: Vec<String> = analyze_with(&query, &registry, &functions, TimeScale::default())
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.to_string())
            .collect();
        if !errors.is_empty() {
            failures.push(format!(
                "{}:\n  query: {}\n  {}",
                file.display(),
                q.split_whitespace().collect::<Vec<_>>().join(" "),
                errors.join("\n  ")
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "error-severity diagnostics in the shipped query corpus:\n{}",
        failures.join("\n")
    );
}

#[test]
fn string_literal_extraction_handles_splices() {
    let src = r#"
        let q = "EVENT SEQ(A x, B y) \
                 WHERE x.a = y.a";
        // "EVENT commented out"
        let other = "not a query";
    "#;
    let lits = string_literals(src);
    assert_eq!(lits.len(), 2, "{lits:?}");
    assert_eq!(
        lits[0].split_whitespace().collect::<Vec<_>>().join(" "),
        "EVENT SEQ(A x, B y) WHERE x.a = y.a"
    );
}
