//! Differential proofs for the static analyzer (`sase_core::analyze`):
//!
//! * **Soundness of "unsatisfiable"**: any query the analyzer flags with an
//!   error-severity never-match diagnostic (`SA003`–`SA006`) must emit zero
//!   matches when actually run over randomized streams. A single
//!   counterexample would mean the interval/equality propagation diverged
//!   from the engine's comparison semantics.
//! * **"No errors" means "registers"**: a query with no error-severity
//!   diagnostics must register successfully on every deployment shape —
//!   single engine, sharded (both modes), and durable.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sase::core::analyze::{analyze, Severity};
use sase::core::engine::Engine;
use sase::core::event::retail_registry;
use sase::core::lang::parse_query;
use sase::core::value::Value;
use sase::core::Event;
use sase::system::DurableOptions;
use sase::{Sase, ShardingMode};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sase-analysis-diff-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Query generation: random conjunctions over the retail schema, skewed so
// a healthy fraction is genuinely unsatisfiable (tight integer bounds).
// ---------------------------------------------------------------------------

const INT_ATTRS: [&str; 2] = ["TagId", "AreaId"];
const PRODUCTS: [&str; 3] = ["soap", "milk", "tea"];
const VARS: [&str; 2] = ["x", "z"];

fn int_atom(rng: &mut StdRng) -> String {
    let var = VARS[rng.gen_range(0..VARS.len())];
    let attr = INT_ATTRS[rng.gen_range(0..INT_ATTRS.len())];
    let cmp = ["=", "!=", "<", "<=", ">", ">="][rng.gen_range(0..6usize)];
    let lit = rng.gen_range(0i64..6);
    format!("{var}.{attr} {cmp} {lit}")
}

fn str_atom(rng: &mut StdRng) -> String {
    let var = VARS[rng.gen_range(0..VARS.len())];
    let cmp = ["=", "!="][rng.gen_range(0..2usize)];
    let lit = PRODUCTS[rng.gen_range(0..PRODUCTS.len())];
    format!("{var}.ProductName {cmp} '{lit}'")
}

fn atom(rng: &mut StdRng) -> String {
    match rng.gen_range(0..10u32) {
        0..=5 => int_atom(rng),
        6..=7 => str_atom(rng),
        // Cross-kind comparison: evaluates to a constant truth value under
        // the engine's coercion rules, and SA003 flags the strict ones.
        8 => format!(
            "{}.ProductName {} {}",
            VARS[rng.gen_range(0..VARS.len())],
            ["=", "!=", "<", ">"][rng.gen_range(0..4usize)],
            rng.gen_range(0i64..6)
        ),
        // Constant atom, sometimes false (SA006 fodder).
        _ => format!("{} = {}", rng.gen_range(0i64..3), rng.gen_range(0i64..3)),
    }
}

/// A SEQ(SHELF_READING x, EXIT_READING z) query with a random conjunction
/// (with occasional OR nesting) as its WHERE clause.
fn gen_query(rng: &mut StdRng) -> String {
    let n = rng.gen_range(1..=6usize);
    let mut conjuncts = vec!["x.TagId = z.TagId".to_string()];
    for _ in 0..n {
        if rng.gen_bool(0.2) {
            conjuncts.push(format!("({} OR {})", atom(rng), atom(rng)));
        } else {
            conjuncts.push(atom(rng));
        }
    }
    format!(
        "EVENT SEQ(SHELF_READING x, EXIT_READING z) WHERE {} \
         WITHIN 1000 RETURN x.TagId",
        conjuncts.join(" AND ")
    )
}

fn stream(rng: &mut StdRng, len: usize) -> Vec<Event> {
    let registry = retail_registry();
    let mut ts = 0u64;
    (0..len)
        .map(|_| {
            ts += rng.gen_range(1..4u64);
            let ty = ["SHELF_READING", "EXIT_READING", "COUNTER_READING"][rng.gen_range(0..3usize)];
            registry
                .build_event(
                    ty,
                    ts,
                    vec![
                        Value::Int(rng.gen_range(0..6i64)),
                        Value::str(PRODUCTS[rng.gen_range(0..PRODUCTS.len())]),
                        Value::Int(rng.gen_range(0..6i64)),
                    ],
                )
                .unwrap()
        })
        .collect()
}

/// Error-severity codes whose message asserts "this query never emits a
/// match". `SA000`/`SA007` block registration outright and are excluded.
fn claims_never_match(code: &str) -> bool {
    matches!(code, "SA003" | "SA004" | "SA005" | "SA006")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness: a never-match verdict is a theorem about the engine.
    /// Every query flagged with an error-severity SA003–SA006 diagnostic
    /// must produce zero matches on randomized streams.
    #[test]
    fn flagged_unsatisfiable_queries_emit_nothing(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let registry = retail_registry();
        // Generate until an unsat-flagged query appears (bounded tries:
        // most seeds hit one quickly given the tight literal ranges).
        for _ in 0..40 {
            let src = gen_query(&mut rng);
            let query = parse_query(&src).expect("generated query parses");
            let flagged = analyze(&query, &registry)
                .iter()
                .any(|d| d.severity == Severity::Error && claims_never_match(d.code));
            if !flagged {
                continue;
            }
            let mut engine = Engine::new(registry.clone());
            engine.register("q", &src).unwrap_or_else(|e| {
                panic!("unsat-flagged query must still register: {e}\n  {src}")
            });
            let events = stream(&mut rng, 60);
            // Feed events one at a time: an evaluation error on one event
            // (possible for cross-kind arithmetic) must not mask matches
            // that a later event could produce.
            let mut matches = 0usize;
            for ev in &events {
                if let Ok(out) = engine.process_batch(std::slice::from_ref(ev)) {
                    matches += out.len();
                }
            }
            prop_assert_eq!(
                matches, 0,
                "analyzer called `{}` unsatisfiable but the engine matched", src
            );
        }
    }

    /// Completeness of the error verdict: no error diagnostics ⇒ the query
    /// registers on every deployment shape.
    #[test]
    fn clean_queries_register_on_every_backend(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let registry = retail_registry();
        let src = gen_query(&mut rng);
        let query = parse_query(&src).expect("generated query parses");
        let has_error = analyze(&query, &registry)
            .iter()
            .any(|d| d.severity == Severity::Error);
        if !has_error {
        let mut single = Engine::new(registry.clone());
        single
            .register("q", &src)
            .unwrap_or_else(|e| panic!("single engine rejected clean query: {e}\n  {src}"));

        for mode in [ShardingMode::ByQuery, ShardingMode::ByPartitionKey] {
            let mut sase = Sase::builder()
                .schemas(registry.clone())
                .shards(2)
                .sharding(mode)
                .build()
                .unwrap();
            sase.register("q", &src).unwrap_or_else(|e| {
                panic!("sharded ({mode:?}) rejected clean query: {e}\n  {src}")
            });
        }

        let dir = tmp_dir();
        let mut durable = Sase::builder()
            .schemas(registry.clone())
            .durable(&dir, DurableOptions::default())
            .build()
            .unwrap();
        durable
            .register("q", &src)
            .unwrap_or_else(|e| panic!("durable rejected clean query: {e}\n  {src}"));
        drop(durable);
        let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

// ---------------------------------------------------------------------------
// Registration errors carry the analyzer's verdict
// ---------------------------------------------------------------------------

#[test]
fn registration_error_names_query_and_diagnostic_code() {
    let registry = retail_registry();
    let mut engine = Engine::new(registry);
    let err = engine
        .register(
            "typo",
            "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
             WHERE x.TagIdd = z.TagId WITHIN 100 RETURN x.TagId",
        )
        .expect_err("unknown attribute must fail registration");
    let text = err.to_string();
    assert!(text.contains("typo"), "error names the query: {text}");
    assert!(
        text.contains("SA001"),
        "error carries the lint code: {text}"
    );
}

#[test]
fn sharded_registration_error_names_query_and_code() {
    let mut sase = Sase::builder()
        .schemas(retail_registry())
        .shards(2)
        .build()
        .unwrap();
    let err = sase
        .register(
            "typo",
            "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
             WHERE x.TagIdd = z.TagId WITHIN 100 RETURN x.TagId",
        )
        .expect_err("unknown attribute must fail registration");
    let text = err.to_string();
    assert!(text.contains("typo"), "{text}");
    assert!(text.contains("SA001"), "{text}");
}

// ---------------------------------------------------------------------------
// Strict mode: builder.deny(threshold)
// ---------------------------------------------------------------------------

#[test]
fn deny_warning_blocks_pinning_query_but_allows_clean_one() {
    let mut sase = Sase::builder()
        .schemas(retail_registry())
        .deny(Severity::Warning)
        .build()
        .unwrap();
    // No partition key -> SA020 warning -> denied under strict mode.
    let err = sase
        .register(
            "pinning",
            "EVENT SEQ(SHELF_READING x, EXIT_READING z) WITHIN 100 RETURN x.TagId",
        )
        .expect_err("strict mode must deny warning-level diagnostics");
    let text = err.to_string();
    assert!(text.contains("SA020"), "{text}");
    assert!(text.contains("denied by strict mode"), "{text}");

    sase.register(
        "clean",
        "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
         WHERE x.TagId = z.TagId WITHIN 100 RETURN x.TagId",
    )
    .expect("clean query passes strict mode");
}

#[test]
fn check_reports_cross_query_lints_against_registered_set() {
    let mut sase = Sase::builder().schemas(retail_registry()).build().unwrap();
    sase.register(
        "orig",
        "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
         WHERE x.TagId = z.TagId WITHIN 100 RETURN x.TagId",
    )
    .unwrap();
    let diags = sase.check(
        "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
         WHERE x.TagId = z.TagId WITHIN 100 RETURN x.TagId",
    );
    assert!(
        diags.iter().any(|d| d.code == "SA030"),
        "duplicate plan lint expected: {diags:?}"
    );
}
