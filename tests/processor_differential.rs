//! Trait-object differential over the unified [`EventProcessor`] surface:
//! the same scripted retail workload — including a derived `INTO` stream,
//! negation, a mid-run unregister + late registration, and provenance
//! tags — is driven through `dyn EventProcessor` for a single [`Engine`],
//! a 3-shard [`ShardedEngine`], and a [`DurableEngine`] that crashes and
//! recovers mid-run. All three must produce **byte-identical**
//! emission sequences, each batch sorted by [`Emission::order_key`].

use std::path::PathBuf;

use sase::core::engine::{Emission, Engine};
use sase::core::event::{retail_registry, Event, SchemaRegistry};
use sase::core::value::{Value, ValueType};
use sase::core::EventProcessor;
use sase::system::{DurableEngine, DurableOptions, ShardedEngineBuilder, ShardingMode};
use sase::Sase;

/// The scripted query set: a derivation chain (`producer` → `mover`), a
/// negation query, and two plain queries, over the retail schemas.
const QUERIES: [(&str, &str); 5] = [
    (
        "producer",
        "EVENT SEQ(SHELF_READING x, SHELF_READING y) \
         WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId WITHIN 100 \
         RETURN y.TagId AS tag, y.AreaId AS area INTO Moves",
    ),
    ("mover", "FROM moves EVENT MOVES m RETURN m.tag AS t"),
    ("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag"),
    (
        "guarded",
        "EVENT SEQ(SHELF_READING a, !(COUNTER_READING c), EXIT_READING b) \
         WHERE a.TagId = b.TagId AND a.TagId = c.TagId WITHIN 60 RETURN a.TagId AS t",
    ),
    (
        "pairs",
        "EVENT SEQ(SHELF_READING a, EXIT_READING b) \
         WHERE a.TagId = b.TagId WITHIN 50 RETURN a.TagId AS tag",
    ),
];

/// Registered after the mid-run mutation point.
const LATE_QUERY: (&str, &str) = ("late", "EVENT COUNTER_READING c RETURN c.TagId AS t");

/// Batch index after which `exits` is unregistered and `late` registered
/// (before the durable run's checkpoint, so recovery re-creates the
/// mutated registration order).
const MUTATE_AT: usize = 4;
const CKPT_AT: usize = 7;
const CRASH_AT: usize = 15;
const BATCHES: usize = 24;
const PER_BATCH: usize = 12;

fn registry() -> SchemaRegistry {
    let reg = retail_registry();
    reg.register(
        "moves",
        &[("tag", ValueType::Int), ("area", ValueType::Int)],
    )
    .unwrap();
    reg
}

fn batches(reg: &SchemaRegistry) -> Vec<Vec<Event>> {
    let types = ["SHELF_READING", "COUNTER_READING", "EXIT_READING"];
    let mut ts = 0u64;
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..BATCHES)
        .map(|_| {
            (0..PER_BATCH)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ts += 1;
                    reg.build_event(
                        types[(state % 3) as usize],
                        ts,
                        vec![
                            Value::Int(((state >> 8) % 5) as i64),
                            Value::str("p"),
                            Value::Int(1 + ((state >> 16) % 3) as i64),
                        ],
                    )
                    .unwrap()
                })
                .collect()
        })
        .collect()
}

/// Render an emission with its full provenance so equality is
/// byte-identical over output *and* tags.
fn render(e: &Emission) -> String {
    format!("{}|{}|{:?}|{}", e.input_index, e.depth, e.path, e.output)
}

/// Drive one batch through the trait object, asserting the order_key
/// contract, and render each emission.
fn drive(p: &mut dyn EventProcessor, batch: &[Event]) -> Vec<String> {
    let tagged = p.process_batch_tagged(None, batch).unwrap();
    assert!(
        tagged
            .windows(2)
            .all(|w| w[0].order_key() <= w[1].order_key()),
        "emissions must arrive sorted by order_key"
    );
    tagged.iter().map(render).collect()
}

/// Apply the mid-run query mutation through the trait object.
fn mutate(p: &mut dyn EventProcessor) {
    assert!(p.unregister(QUERIES[2].0));
    assert!(!p.unregister(QUERIES[2].0), "second unregister is a no-op");
    p.register(LATE_QUERY.0, LATE_QUERY.1).unwrap();
}

fn expected_final_names() -> Vec<String> {
    ["producer", "mover", "guarded", "pairs", "late"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Run the whole scripted workload through an uninterrupted processor.
fn run_uninterrupted(mut p: Box<dyn EventProcessor>, batches: &[Vec<Event>]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, batch) in batches.iter().enumerate() {
        out.extend(drive(p.as_mut(), batch));
        if i + 1 == MUTATE_AT {
            mutate(p.as_mut());
        }
    }
    assert_eq!(p.query_names(), expected_final_names());
    out
}

fn tmp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sase-procdiff-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn engine_sharded_and_durable_emit_identically_through_dyn_processor() {
    let input = batches(&registry());

    // 1) Single engine, boxed.
    let mut engine = Engine::new(registry());
    for (name, src) in QUERIES {
        engine.register(name, src).unwrap();
    }
    let reference = run_uninterrupted(Box::new(engine), &input);
    assert!(!reference.is_empty());
    assert!(
        reference.iter().any(|l| l.contains("[mover@")),
        "the derived stream consumer must fire: {reference:?}"
    );
    assert!(
        reference.iter().any(|l| l.contains("[late@")),
        "the late-registered query must fire"
    );

    // 2) Sharded engine (3 workers), boxed; the mutation exercises
    //    post-build unregister/register parity.
    let mut builder = ShardedEngineBuilder::new(registry());
    for (name, src) in QUERIES {
        builder.register(name, src).unwrap();
    }
    let sharded = builder.build(3).unwrap();
    let got = run_uninterrupted(Box::new(sharded), &input);
    assert_eq!(reference, got, "sharded != single engine");

    // 3) Durable engine with a checkpoint, a crash, and a recovery.
    let dir = tmp_dir("durable");
    let opts = DurableOptions {
        segment_bytes: 512, // force the log to roll across segments
        ..DurableOptions::default()
    };
    let mut engine = Engine::new(registry());
    for (name, src) in QUERIES {
        engine.register(name, src).unwrap();
    }
    let mut durable = DurableEngine::create(&dir, engine, opts).unwrap();

    let mut live: Vec<String> = Vec::new();
    let mut since_ckpt: Vec<Vec<String>> = Vec::new();
    {
        let p: &mut dyn EventProcessor = &mut durable;
        for (i, batch) in input[..CKPT_AT].iter().enumerate() {
            live.extend(drive(p, batch));
            if i + 1 == MUTATE_AT {
                mutate(p);
            }
        }
    }
    durable.checkpoint().unwrap();
    {
        let p: &mut dyn EventProcessor = &mut durable;
        for batch in &input[CKPT_AT..CRASH_AT] {
            since_ckpt.push(drive(p, batch));
        }
    }
    drop(durable); // the process dies

    let (recovered, report) = DurableEngine::recover(&dir, opts, |snaps| {
        let reg = registry();
        if let Some(snaps) = snaps {
            snaps.preregister_derived(&reg)?;
        }
        let mut e = Engine::new(reg);
        // Recreate the checkpointed registration order, mutation included.
        for (name, src) in QUERIES {
            e.register(name, src)?;
        }
        mutate(&mut e);
        Ok(e)
    })
    .unwrap();
    assert_eq!(report.checkpoint_seq, Some(CKPT_AT as u64));
    assert_eq!(report.records_replayed, (CRASH_AT - CKPT_AT) as u64);
    assert!(report.replay_errors.is_empty());
    // Deterministic replay: the tail re-emits, byte for byte and in order,
    // what the crashed process emitted after its last checkpoint.
    let since_ckpt_untagged: Vec<String> = since_ckpt
        .iter()
        .flatten()
        .map(|l| l.rsplit('|').next().unwrap().to_string())
        .collect();
    let replayed: Vec<String> = report.emissions.iter().map(|e| e.to_string()).collect();
    assert_eq!(since_ckpt_untagged, replayed);
    live.extend(since_ckpt.into_iter().flatten());

    // Resume the rest of the stream through the recovered trait object.
    let mut p: Box<dyn EventProcessor> = Box::new(recovered);
    for batch in &input[CRASH_AT..] {
        live.extend(drive(p.as_mut(), batch));
    }
    assert_eq!(p.query_names(), expected_final_names());
    assert_eq!(
        reference, live,
        "durable crash/recover run != single engine"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The fourth and fifth backend legs: a `ShardedEngine` in data-parallel
/// `ByPartitionKey` mode, and a `DurableEngine` wrapping one that crashes
/// and recovers mid-run. Both must reproduce the single-engine reference
/// byte for byte, provenance tags included.
#[test]
fn by_partition_key_and_durable_emit_identically() {
    let input = batches(&registry());

    // Reference: single engine.
    let mut engine = Engine::new(registry());
    for (name, src) in QUERIES {
        engine.register(name, src).unwrap();
    }
    let reference = run_uninterrupted(Box::new(engine), &input);
    assert!(!reference.is_empty());

    // 4) Data-parallel sharded engine: 4 data workers + 1 pinned.
    let mut builder = ShardedEngineBuilder::new(registry());
    builder.set_sharding(ShardingMode::ByPartitionKey);
    for (name, src) in QUERIES {
        builder.register(name, src).unwrap();
    }
    let sharded = builder.build(4).unwrap();
    // Dispositions: the INTO producer, its FROM consumer, and the
    // WHERE-less `exits` are pinned; `guarded` (whose TagId class covers
    // the negated COUNTER slot too) and `pairs` distribute.
    assert_eq!(sharded.shard_of("producer"), Some(4), "INTO pins");
    assert_eq!(sharded.shard_of("mover"), Some(4), "FROM pins");
    assert_eq!(sharded.shard_of("exits"), Some(4), "no partition key pins");
    assert_eq!(
        sharded.shard_of("guarded"),
        None,
        "negation-covering key distributes"
    );
    assert_eq!(
        sharded.shard_of("pairs"),
        None,
        "plain equivalence distributes"
    );
    let got = run_uninterrupted(Box::new(sharded), &input);
    assert_eq!(reference, got, "ByPartitionKey sharded != single engine");

    // 5) Durable data-parallel deployment with a checkpoint, a crash, and
    //    a recovery, mirroring the single-engine durable leg.
    let dir = tmp_dir("durable-partitioned");
    let opts = DurableOptions {
        segment_bytes: 512,
        ..DurableOptions::default()
    };
    let mk_sharded = || {
        let mut builder = ShardedEngineBuilder::new(registry());
        builder.set_sharding(ShardingMode::ByPartitionKey);
        for (name, src) in QUERIES {
            builder.register(name, src).unwrap();
        }
        builder.build(4).unwrap()
    };
    let mut durable = DurableEngine::create(&dir, mk_sharded(), opts).unwrap();

    let mut live: Vec<String> = Vec::new();
    let mut since_ckpt: Vec<Vec<String>> = Vec::new();
    {
        let p: &mut dyn EventProcessor = &mut durable;
        for (i, batch) in input[..CKPT_AT].iter().enumerate() {
            live.extend(drive(p, batch));
            if i + 1 == MUTATE_AT {
                mutate(p);
            }
        }
    }
    durable.checkpoint().unwrap();
    {
        let p: &mut dyn EventProcessor = &mut durable;
        for batch in &input[CKPT_AT..CRASH_AT] {
            since_ckpt.push(drive(p, batch));
        }
    }
    drop(durable); // the process dies

    let (recovered, report) = DurableEngine::recover(&dir, opts, |snaps| {
        if let Some(snaps) = snaps {
            snaps.preregister_derived(&registry())?;
        }
        // Recreate the checkpointed registration sequence, mutation
        // included: the sticky routing-key claims replay identically, so
        // the rebuilt deployment routes (and shards) exactly as the
        // crashed one did.
        let mut sharded = mk_sharded();
        mutate(&mut sharded);
        Ok(sharded)
    })
    .unwrap();
    assert_eq!(report.checkpoint_seq, Some(CKPT_AT as u64));
    assert_eq!(report.records_replayed, (CRASH_AT - CKPT_AT) as u64);
    assert!(report.replay_errors.is_empty());
    let since_ckpt_untagged: Vec<String> = since_ckpt
        .iter()
        .flatten()
        .map(|l| l.rsplit('|').next().unwrap().to_string())
        .collect();
    let replayed: Vec<String> = report.emissions.iter().map(|e| e.to_string()).collect();
    assert_eq!(since_ckpt_untagged, replayed);
    live.extend(since_ckpt.into_iter().flatten());

    let mut p: Box<dyn EventProcessor> = Box::new(recovered);
    for batch in &input[CRASH_AT..] {
        live.extend(drive(p.as_mut(), batch));
    }
    assert_eq!(p.query_names(), expected_final_names());
    assert_eq!(
        reference, live,
        "durable ByPartitionKey crash/recover run != single engine"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `Sase` facade is an `EventProcessor` too: the same workload through
/// facade-built sharded deployments — query-parallel and data-parallel —
/// matches the reference byte for byte.
#[test]
fn facade_backend_is_differentially_identical() {
    let input = batches(&registry());
    let mut engine = Engine::new(registry());
    for (name, src) in QUERIES {
        engine.register(name, src).unwrap();
    }
    let reference = run_uninterrupted(Box::new(engine), &input);

    let mut sase = Sase::builder()
        .schemas(registry())
        .shards(3)
        .build()
        .unwrap();
    for (name, src) in QUERIES {
        sase.register(name, src).unwrap();
    }
    let got = run_uninterrupted(Box::new(sase), &input);
    assert_eq!(reference, got, "facade sharded != single engine");

    let mut sase = Sase::builder()
        .schemas(registry())
        .shards(4)
        .sharding(ShardingMode::ByPartitionKey)
        .build()
        .unwrap();
    for (name, src) in QUERIES {
        sase.register(name, src).unwrap();
    }
    assert_eq!(sase.shard_count(), 5, "4 data workers + 1 pinned");
    let got = run_uninterrupted(Box::new(sase), &input);
    assert_eq!(reference, got, "facade data-parallel != single engine");
}
