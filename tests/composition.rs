//! Query composition through derived output streams: `RETURN ... INTO s`
//! re-ingests composite events as first-class events on stream `s`
//! (§2.1.1: the RETURN clause "can also name the output stream and the
//! type of events in the output").

use sase::core::engine::Engine;
use sase::core::event::retail_registry;
use sase::core::value::{Value, ValueType};
use sase::core::SchemaRegistry;

fn ev(reg: &SchemaRegistry, ty: &str, ts: u64, tag: i64, area: i64) -> sase::core::Event {
    reg.build_event(
        ty,
        ts,
        vec![Value::Int(tag), Value::str("soap"), Value::Int(area)],
    )
    .unwrap()
}

#[test]
fn two_stage_pipeline_with_lazy_schema() {
    let registry = retail_registry();
    let mut engine = Engine::new(registry.clone());
    // Stage 1: location changes, published as `moves` events.
    engine
        .register(
            "stage1",
            "EVENT SEQ(SHELF_READING x, SHELF_READING y) \
             WHERE x.TagId = y.TagId AND x.AreaId != y.AreaId WITHIN 1000 \
             RETURN y.TagId AS tag, y.AreaId AS area, y.Timestamp AS at INTO moves",
        )
        .unwrap();
    // Stage 2: two moves of the same tag within a window — a fast mover.
    engine
        .register(
            "stage2",
            "FROM moves EVENT SEQ(moves a, moves b) \
             WHERE a.tag = b.tag AND a.area != b.area WITHIN 1000 \
             RETURN b.tag AS t",
        )
        .unwrap_err(); // `moves` type does not exist until stage 1 emits

    // First emission registers the derived type...
    let stream = vec![
        ev(&registry, "SHELF_READING", 10, 7, 1),
        ev(&registry, "SHELF_READING", 20, 7, 2),
    ];
    let out = engine.process_batch(&stream).unwrap();
    assert_eq!(out.len(), 1);
    assert!(
        registry.type_id("moves").is_some(),
        "derived type registered"
    );

    // ...after which stage 2 compiles and composes.
    engine
        .register(
            "stage2",
            "FROM moves EVENT SEQ(moves a, moves b) \
             WHERE a.tag = b.tag AND a.area != b.area WITHIN 1000 \
             RETURN b.tag AS t",
        )
        .unwrap();
    // Two further moves AFTER stage 2 exists (it never saw the move@20
    // derived event — continuous queries only see events from registration
    // onwards, §3): 2 -> 1 at ts 30, then 1 -> 2 at ts 40.
    let stream2 = vec![
        ev(&registry, "SHELF_READING", 30, 7, 1),
        ev(&registry, "SHELF_READING", 40, 7, 2),
    ];
    let out = engine.process_batch(&stream2).unwrap();
    let stage2_hits: Vec<_> = out
        .iter()
        .filter(|d| d.query.as_ref() == "stage2")
        .collect();
    assert!(
        !stage2_hits.is_empty(),
        "stage 2 pairs the derived move events"
    );
    for hit in &stage2_hits {
        assert_eq!(hit.value("t"), Some(&Value::Int(7)));
    }
}

#[test]
fn pre_registered_output_schema() {
    let registry = retail_registry();
    registry
        .register(
            "alerts",
            &[("tag", ValueType::Int), ("area", ValueType::Int)],
        )
        .unwrap();
    let mut engine = Engine::new(registry.clone());
    engine
        .register(
            "producer",
            "EVENT EXIT_READING z RETURN z.TagId AS tag, z.AreaId AS area INTO alerts",
        )
        .unwrap();
    // The consumer can be registered immediately: the type pre-exists.
    engine
        .register(
            "consumer",
            "FROM alerts EVENT alerts a WHERE a.area = 4 RETURN a.tag",
        )
        .unwrap();
    let out = engine
        .process(&ev(&registry, "EXIT_READING", 5, 9, 4))
        .unwrap();
    let consumer_hits: Vec<_> = out
        .iter()
        .filter(|d| d.query.as_ref() == "consumer")
        .collect();
    assert_eq!(consumer_hits.len(), 1);
    assert_eq!(consumer_hits[0].value("a.tag"), Some(&Value::Int(9)));
}

#[test]
fn into_requires_identifier_column_names() {
    let registry = retail_registry();
    let mut engine = Engine::new(registry.clone());
    let err = engine
        .register("bad", "EVENT EXIT_READING z RETURN z.TagId INTO out_stream")
        .unwrap_err();
    assert!(err.to_string().contains("AS"), "suggests adding AS: {err}");
}

#[test]
fn cyclic_into_graph_is_cut_off() {
    let registry = retail_registry();
    registry
        .register("loop_stream", &[("tag", ValueType::Int)])
        .unwrap();
    let mut engine = Engine::new(registry.clone());
    // A self-feeding query: every loop_stream event emits another.
    engine
        .register(
            "feedback",
            "FROM loop_stream EVENT loop_stream a RETURN a.tag AS tag INTO loop_stream",
        )
        .unwrap();
    let seed = registry
        .build_event("loop_stream", 1, vec![Value::Int(1)])
        .unwrap();
    let err = engine.process_on(Some("loop_stream"), &seed).unwrap_err();
    assert!(err.to_string().contains("cyclic"), "{err}");
}

#[test]
fn derived_events_do_not_leak_to_other_streams() {
    let registry = retail_registry();
    let mut engine = Engine::new(registry.clone());
    engine
        .register(
            "producer",
            "EVENT EXIT_READING z RETURN z.TagId AS tag INTO side",
        )
        .unwrap();
    // A default-stream query matching everything must not see `side`
    // events (they are on their own stream).
    engine
        .register("all_exits", "EVENT EXIT_READING e RETURN e.TagId")
        .unwrap();
    let out = engine
        .process(&ev(&registry, "EXIT_READING", 5, 9, 4))
        .unwrap();
    assert_eq!(out.len(), 2); // producer + all_exits, nothing extra
}
