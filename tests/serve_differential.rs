//! Wire-vs-embedded differential over the serving layer: the same
//! workload driven through a TCP [`Client`] against a served [`Sase`]
//! deployment must produce **byte-identical** rendered emissions — and
//! identical analyzer diagnostics on registration — to the same facade
//! used embedded, in process. Plus the durability contract of graceful
//! shutdown: every batch acknowledged over the wire survives
//! [`ServerHandle::shutdown`](sase::ServerHandle::shutdown) and is
//! replayed by [`SaseBuilder::recover`](sase::SaseBuilder::recover).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use sase::core::event::{retail_registry, Event, SchemaRegistry};
use sase::core::value::Value;
use sase::server::client::Client;
use sase::server::wire::TickMode;
use sase::system::DurableOptions;
use sase::{EventProcessor, Sase, ServerConfig};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sase-serve-{}-{label}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The standing queries: a sequence join, a negation guard, and a plain
/// filter — `guarded` deliberately references `c.TagId` so the analyzer
/// has something to say at registration time on both paths.
const QUERIES: [(&str, &str); 3] = [
    (
        "pairs",
        "EVENT SEQ(SHELF_READING a, EXIT_READING b) \
         WHERE a.TagId = b.TagId WITHIN 50 RETURN a.TagId AS tag",
    ),
    (
        "guarded",
        "EVENT SEQ(SHELF_READING a, !(COUNTER_READING c), EXIT_READING b) \
         WHERE a.TagId = b.TagId AND a.TagId = c.TagId WITHIN 60 RETURN a.TagId AS t",
    ),
    ("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag"),
];

fn synthetic_batches(reg: &SchemaRegistry, batches: usize, per_batch: usize) -> Vec<Vec<Event>> {
    let types = ["SHELF_READING", "COUNTER_READING", "EXIT_READING"];
    let mut ts = 0u64;
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..batches)
        .map(|_| {
            (0..per_batch)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ts += 1;
                    reg.build_event(
                        types[(state % 3) as usize],
                        ts,
                        vec![
                            Value::Int(((state >> 8) % 5) as i64),
                            Value::str("p"),
                            Value::Int(1 + ((state >> 16) % 3) as i64),
                        ],
                    )
                    .unwrap()
                })
                .collect()
        })
        .collect()
}

fn render<T: std::fmt::Display>(out: &[T]) -> Vec<String> {
    out.iter().map(|e| e.to_string()).collect()
}

/// The tentpole differential: register + ingest the same scripted
/// workload through a wire client and through the embedded facade; the
/// rendered emission sequences (canonical order), the analyzer findings
/// on registration, the runtime stats, and the EXPLAIN plans must all be
/// byte-identical.
#[test]
fn wire_matches_embedded_byte_for_byte() {
    let reg = retail_registry();
    let batches = synthetic_batches(&reg, 16, 10);

    // Embedded reference: the facade used in-process.
    let mut embedded = Sase::builder().schemas(reg.clone()).build().unwrap();

    // Served: an identical deployment behind the line protocol.
    let served = Sase::builder().schemas(reg.clone()).build().unwrap();
    let handle = served
        .serve("127.0.0.1:0", ServerConfig::default())
        .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Registration: the wire returns the analyzer's findings; embedded,
    // `check` is the same analysis the server runs before registering.
    for (name, src) in QUERIES {
        let embedded_diags = render(&EventProcessor::check(&embedded, src));
        embedded.register(name, src).unwrap();
        let wire_diags = render(&client.register(name, src).unwrap());
        assert_eq!(
            embedded_diags, wire_diags,
            "analyzer findings must match for {name}"
        );
    }
    assert_eq!(client.queries().unwrap(), embedded.query_names());

    // Ingest: batch by batch, emissions must render identically and in
    // the same canonical order.
    let mut total = 0usize;
    for batch in &batches {
        let expect = render(&embedded.process_batch(batch).unwrap());
        let got = render(&client.ingest(None, TickMode::Explicit, batch).unwrap());
        assert_eq!(expect, got, "wire emissions diverged from embedded");
        total += got.len();
    }
    assert!(total > 0, "workload must produce detections");

    // Runtime counters and plans went through the same engine paths.
    for (name, _) in QUERIES {
        assert_eq!(
            client.stats(name).unwrap(),
            EventProcessor::stats(&embedded, name).unwrap(),
            "stats must match for {name}"
        );
        assert_eq!(
            client.explain(name).unwrap(),
            EventProcessor::explain(&embedded, name).unwrap(),
            "explain must match for {name}"
        );
    }

    drop(client);
    let backend = handle.shutdown();
    assert_eq!(backend.query_names(), embedded.query_names());
}

/// Satellite 2's contract: serve a durable deployment, ingest over the
/// wire, shut down gracefully (drain + WAL flush), *drop* the returned
/// backend as if the process died — then recover from the directory.
/// Every batch the server acknowledged must be replayed; the recovered
/// deployment continues byte-identically to an uninterrupted reference.
#[test]
fn acknowledged_batches_survive_shutdown_and_recover() {
    let reg = retail_registry();
    let batches = synthetic_batches(&reg, 12, 8);
    let served_upto = 7usize;

    // Uninterrupted reference over the full stream.
    let mut reference = Sase::builder().schemas(reg.clone()).build().unwrap();
    for (name, src) in QUERIES {
        reference.register(name, src).unwrap();
    }
    let mut ref_out: Vec<String> = Vec::new();
    for batch in &batches {
        ref_out.extend(render(&reference.process_batch(batch).unwrap()));
    }
    assert!(!ref_out.is_empty());

    // Serve a durable deployment and ingest the first chunk on the wire.
    let dir = tmp_dir("durable");
    let opts = DurableOptions {
        segment_bytes: 512, // force the log to roll across segments
        ..DurableOptions::default()
    };
    let durable = Sase::builder()
        .schemas(reg.clone())
        .durable(&dir, opts)
        .build()
        .unwrap();
    let handle = durable
        .serve("127.0.0.1:0", ServerConfig::default())
        .unwrap();
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).unwrap();
    for (name, src) in QUERIES {
        client.register(name, src).unwrap();
    }
    let mut acked: Vec<String> = Vec::new();
    for batch in &batches[..served_upto] {
        // A reply frame *is* the acknowledgement: the batch reached the
        // engine and its emissions are final.
        acked.extend(render(
            &client.ingest(None, TickMode::Explicit, batch).unwrap(),
        ));
    }
    drop(client);

    // Graceful shutdown flushes the WAL; then the process "dies" —
    // nothing survives but the directory.
    let backend = handle.shutdown();
    assert!(
        Client::connect(addr)
            .map(|mut c| c.ping())
            .and(Ok(()))
            .is_err()
            || Client::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );
    drop(backend);

    // Recover: the log replays exactly the acknowledged batches.
    let (mut recovered, report) = Sase::builder()
        .schemas(reg.clone())
        .durable(&dir, opts)
        .recover(|p| {
            for (name, src) in QUERIES {
                p.register(name, src)?;
            }
            Ok(())
        })
        .unwrap();
    assert_eq!(report.records_replayed, served_upto as u64);
    assert_eq!(
        render(&report.emissions),
        acked,
        "every acknowledged emission must be reproduced by replay"
    );

    // The recovered deployment finishes the stream byte-identically.
    let mut live = acked;
    for batch in &batches[served_upto..] {
        live.extend(render(&recovered.process_batch(batch).unwrap()));
    }
    assert_eq!(ref_out, live, "shutdown + recover lost or duplicated state");
    std::fs::remove_dir_all(&dir).unwrap();
}
