//! # sase — umbrella crate for the SASE reproduction
//!
//! Re-exports every crate of the workspace so examples and integration
//! tests can `use sase::core::...`, `use sase::stream::...`, etc.
//!
//! * [`core`] — the SASE language, planner, NFA/AIS sequence operators, and
//!   continuous-query engine.
//! * [`stream`] — the five-layer Cleaning and Association pipeline.
//! * [`rfid`] — the RFID device simulator, retail/warehouse scenarios, and
//!   synthetic workload generators.
//! * [`db`] — the event database (in-memory relational store, SQL subset,
//!   location/containment history, track-and-trace).
//! * [`obs`] — observability: the zero-alloc metrics registry, latency
//!   histograms, Prometheus-style exposition, and lifecycle trace hooks.
//! * [`store`] — durability: the segmented event log and engine
//!   checkpoint files.
//! * [`system`] — full-system wiring: devices → cleaning → event processor
//!   → database, plus the paper's built-in DB functions, durable
//!   deployments with crash recovery, and the textual UI.
//! * [`server`] — the network serving layer: line protocol, HTTP/1.1,
//!   and WebSocket push over any deployment (see
//!   [`Sase::serve`](facade::Sase::serve)).
//!
//! ## Public API
//!
//! The recommended entry point is the [`Sase`] facade: a builder that
//! assembles any engine deployment shape (single, sharded, durable) behind
//! the unified [`EventProcessor`] trait, returns typed [`QueryHandle`]s on
//! registration, and delivers output push-style through subscriptions.
//! See [`facade`] for the tour.

pub mod facade;

pub use sase_core as core;
pub use sase_db as db;
pub use sase_obs as obs;
pub use sase_rfid as rfid;
pub use sase_server as server;
pub use sase_store as store;
pub use sase_stream as stream;
pub use sase_system as system;

pub use facade::{Collector, QueryHandle, Sase, SaseBuilder};
pub use sase_core::analyze::{Diagnostic, Severity};
pub use sase_core::engine::RoutingMode;
pub use sase_core::processor::EventProcessor;
pub use sase_core::snapshot::SnapshotSet;
pub use sase_obs::{
    render_prometheus, MemorySink, MetricsRegistry, MetricsSnapshot, TraceEvent, TraceKind,
    TraceSink, Tracer,
};
pub use sase_server::{Server, ServerConfig, ServerError, ServerHandle, SlowPolicy};
pub use sase_system::{DurableOptions, RecoveryReport, ShardingMode};
