//! The `Sase` facade: one builder, one handle type, one subscription API
//! over every engine deployment shape.
//!
//! The paper's Figure 3 shows a single system — queries go in, complex
//! events stream out. This module is that system's front door. A
//! [`SaseBuilder`] assembles any combination of the workspace's engine
//! deployments behind the unified
//! [`EventProcessor`] surface:
//!
//! ```text
//! Sase::builder()                         -> single Engine
//!     .shards(4)                          -> ShardedEngine (4 workers)
//!     .durable(dir, opts)                 -> DurableEngine<...> (WAL + checkpoints)
//!     .shards(4).durable(dir, opts)       -> DurableEngine<ShardedEngine>
//! ```
//!
//! Registration returns a typed [`QueryHandle`] instead of a bare string,
//! and output is push-based: [`Sase::subscribe`] attaches a callback to a
//! query, [`Sase::subscribe_channel`] a channel, and [`Sase::collect`] a
//! [`Collector`] that preserves the classic `Vec<ComplexEvent>` pull
//! style. Pull still works too — [`Sase::process`] returns the batch's
//! emissions directly.
//!
//! ```
//! use sase::{Sase, core::event::retail_registry, core::value::Value};
//!
//! let mut sase = Sase::builder().schemas(retail_registry()).build().unwrap();
//! let exits = sase
//!     .register("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag")
//!     .unwrap();
//! let seen = sase.collect(&exits).unwrap();
//!
//! let event = sase
//!     .schemas()
//!     .build_event("EXIT_READING", 1, vec![Value::Int(7), Value::str("soap"), Value::Int(4)])
//!     .unwrap();
//! sase.process(&[event]).unwrap();
//! assert_eq!(seen.take().len(), 1);
//! ```

use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use sase_core::analyze::{Diagnostic, Severity};
use sase_core::engine::{Emission, Engine, RoutingMode, Sink};
use sase_core::error::{Result, SaseError};
use sase_core::event::{Event, SchemaRegistry};
use sase_core::functions::FunctionRegistry;
use sase_core::output::ComplexEvent;
use sase_core::plan::PlannerOptions;
use sase_core::processor::EventProcessor;
use sase_core::runtime::RuntimeStats;
use sase_core::snapshot::SnapshotSet;
use sase_core::time::TimeScale;
use sase_obs::{MetricsRegistry, MetricsSnapshot, TraceSink, Tracer};
use sase_system::{
    DurableEngine, DurableOptions, RecoveryReport, ShardedEngine, ShardedEngineBuilder,
    ShardingMode,
};

/// A typed handle to a registered continuous query, returned by
/// [`Sase::register`]. Handles replace stringly-typed lookups on the
/// facade: subscriptions, stats, and unregistration all take a handle, so
/// a typo'd query name is a compile-visible `Option`/`Result` at
/// registration time, not a silent miss deep in a hot loop.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryHandle {
    name: Arc<str>,
}

impl QueryHandle {
    /// The registered query name this handle refers to.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Display for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// A pull-style accumulator fed by a push subscription: every emission of
/// the subscribed query is appended as processing happens, and the host
/// drains with [`Collector::take`] whenever convenient — the classic
/// `Vec<ComplexEvent>` workflow on top of the sink API.
///
/// Clones share the same buffer. For queries hosted on sharded worker
/// threads the buffer is filled from those threads; `take` observes
/// everything emitted by batches that have completed.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    buf: Arc<Mutex<Vec<ComplexEvent>>>,
}

impl Collector {
    /// Drain everything collected so far, leaving the collector empty.
    pub fn take(&self) -> Vec<ComplexEvent> {
        std::mem::take(&mut *self.buf.lock().expect("collector lock"))
    }

    /// Number of emissions currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("collector lock").len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The deployment shapes [`SaseBuilder::build`] can assemble. Kept as an
/// enum (rather than a `Box<dyn ...>`) so durable-only operations like
/// [`Sase::checkpoint`] stay available without downcasting. One exists
/// per deployment, so the variant size spread is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Engine(Engine),
    Sharded(ShardedEngine),
    Durable(DurableEngine<Engine>),
    DurableSharded(DurableEngine<ShardedEngine>),
}

/// A periodic metrics push installed by [`SaseBuilder::on_metrics`]: the
/// callback fires on the processing thread after a batch completes, at
/// most once per interval. No extra threads are involved.
struct MetricsPush {
    interval: Duration,
    last: Instant,
    f: MetricsPushFn,
}

/// The boxed callback [`SaseBuilder::on_metrics`] installs.
type MetricsPushFn = Box<dyn FnMut(&MetricsSnapshot) + Send>;

/// The assembled system facade: an engine deployment (single, sharded,
/// durable, or both) behind one ingestion and subscription surface. Build
/// one with [`Sase::builder`]; see the [module docs](self) for the tour.
///
/// `Sase` itself implements
/// [`EventProcessor`], so it can be
/// dropped anywhere a deployment is expected — e.g. as the engine stage of
/// [`sase_system::run_pipelined`].
pub struct Sase {
    backend: Backend,
    deny: Option<Severity>,
    push: Option<MetricsPush>,
}

/// Configures and assembles a [`Sase`] deployment. Obtained from
/// [`Sase::builder`]; every knob is optional.
#[derive(Default)]
pub struct SaseBuilder {
    schemas: Option<SchemaRegistry>,
    functions: Option<FunctionRegistry>,
    time_scale: Option<TimeScale>,
    routing: Option<RoutingMode>,
    shards: Option<usize>,
    sharding: Option<ShardingMode>,
    durable: Option<(PathBuf, DurableOptions)>,
    deny: Option<Severity>,
    metrics: bool,
    on_metrics: Option<(Duration, MetricsPushFn)>,
    trace: Option<Tracer>,
}

impl SaseBuilder {
    /// The schema registry events are built against (default: an empty
    /// registry — register event types on [`Sase::schemas`] afterwards).
    pub fn schemas(mut self, registry: SchemaRegistry) -> Self {
        self.schemas = Some(registry);
        self
    }

    /// The host function registry (default:
    /// [`FunctionRegistry::with_stdlib`]).
    pub fn functions(mut self, functions: FunctionRegistry) -> Self {
        self.functions = Some(functions);
        self
    }

    /// Logical time scale for WITHIN conversion in registered queries.
    pub fn time_scale(mut self, scale: TimeScale) -> Self {
        self.time_scale = Some(scale);
        self
    }

    /// Event-to-query routing mode (default: [`RoutingMode::Indexed`]).
    /// Applies to every engine the deployment contains.
    pub fn routing(mut self, mode: RoutingMode) -> Self {
        self.routing = Some(mode);
        self
    }

    /// Partition queries across `n` engine workers (default: one inline
    /// engine). Queries registered later are placed on the least-loaded
    /// shard compatible with the co-location rules (INTO/FROM chains and
    /// shared host functions stay together).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// How the sharded deployment splits work across its workers
    /// (default: [`ShardingMode::ByQuery`]). Only meaningful together
    /// with [`SaseBuilder::shards`]. With
    /// [`ShardingMode::ByPartitionKey`] the deployment gets `n` *data*
    /// workers fed by partition-key hash plus one pinned worker for
    /// non-distributable queries; see [`ShardingMode`] for the rules and
    /// trade-offs.
    pub fn sharding(mut self, mode: ShardingMode) -> Self {
        self.sharding = Some(mode);
        self
    }

    /// Strict registration: reject any query whose static analysis (see
    /// [`sase_core::analyze()`]) reports a diagnostic at `threshold` severity
    /// or above. `deny(Severity::Warning)` refuses queries with scaling
    /// hazards or partial-coverage warnings; `deny(Severity::Error)`
    /// refuses only provably broken queries (which would largely fail to
    /// register anyway, but turns "registers yet can never match" into a
    /// hard error). Default: off — diagnostics are advisory via
    /// [`Sase::check`].
    pub fn deny(mut self, threshold: Severity) -> Self {
        self.deny = Some(threshold);
        self
    }

    /// Enable the metrics registry on every engine the deployment
    /// contains (default: off — the per-event hot path pays nothing).
    /// When on, [`Sase::metrics`] returns the full instrumentation view:
    /// ingest counters and batch-latency histograms, router hit/miss,
    /// per-shard routing series, WAL series on durable deployments, and
    /// the per-query [`RuntimeStats`] promoted to `sase_query_*` series.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Install a periodic metrics push: after a processed batch, if at
    /// least `interval` elapsed since the last push, `f` observes a fresh
    /// [`MetricsSnapshot`] on the processing thread. Implies
    /// [`SaseBuilder::metrics`]`(true)`.
    pub fn on_metrics(
        mut self,
        interval: Duration,
        f: impl FnMut(&MetricsSnapshot) + Send + 'static,
    ) -> Self {
        self.metrics = true;
        self.on_metrics = Some((interval, Box::new(f)));
        self
    }

    /// Install a sampled lifecycle tracer: 1 of every `sample_every`
    /// units of work emits typed begin/end [`TraceEvent`](sase_obs::TraceEvent)s
    /// (batch ingest, query evaluation, shard dispatch, WAL commit,
    /// checkpoint, recovery) to `sink`. Spans of work done on worker or
    /// durable layers fire on those layers' threads.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>, sample_every: u64) -> Self {
        self.trace = Some(Tracer::sampled(sink, sample_every));
        self
    }

    /// Put the deployment behind a write-ahead event log with atomic
    /// checkpoints in `dir`. [`SaseBuilder::build`] requires `dir` to be
    /// fresh; reopening an existing deployment goes through
    /// [`SaseBuilder::recover`].
    pub fn durable(mut self, dir: impl Into<PathBuf>, opts: DurableOptions) -> Self {
        self.durable = Some((dir.into(), opts));
        self
    }

    fn registry(&self) -> SchemaRegistry {
        self.schemas.clone().unwrap_or_default()
    }

    fn function_registry(&self) -> FunctionRegistry {
        self.functions
            .clone()
            .unwrap_or_else(FunctionRegistry::with_stdlib)
    }

    fn make_engine(&self) -> Engine {
        let mut engine = Engine::with_functions(self.registry(), self.function_registry());
        if let Some(scale) = self.time_scale {
            engine.set_time_scale(scale);
        }
        if let Some(mode) = self.routing {
            engine.set_routing(mode);
        }
        if self.metrics {
            engine.enable_metrics(&MetricsRegistry::new());
        }
        if let Some(t) = &self.trace {
            engine.set_tracer(t.clone());
        }
        engine
    }

    fn make_sharded(&self, shards: usize) -> Result<ShardedEngine> {
        let mut builder =
            ShardedEngineBuilder::with_functions(self.registry(), self.function_registry());
        if let Some(scale) = self.time_scale {
            builder.set_time_scale(scale);
        }
        if let Some(mode) = self.routing {
            builder.set_routing(mode);
        }
        if let Some(mode) = self.sharding {
            builder.set_sharding(mode);
        }
        builder.set_metrics(self.metrics);
        let mut sharded = builder.build(shards)?;
        if let Some(t) = &self.trace {
            sharded.set_tracer(t.clone());
        }
        Ok(sharded)
    }

    /// Assemble a fresh deployment.
    pub fn build(mut self) -> Result<Sase> {
        let mut backend = match (self.shards, &self.durable) {
            (None, None) => Backend::Engine(self.make_engine()),
            (Some(n), None) => Backend::Sharded(self.make_sharded(n)?),
            (None, Some((dir, opts))) => Backend::Durable(
                DurableEngine::create(dir.clone(), self.make_engine(), *opts)
                    .map_err(durable_err)?,
            ),
            (Some(n), Some((dir, opts))) => {
                let sharded = self.make_sharded(n)?;
                Backend::DurableSharded(
                    DurableEngine::create(dir.clone(), sharded, *opts).map_err(durable_err)?,
                )
            }
        };
        if let Some(t) = &self.trace {
            // The inner engines got the tracer in make_engine/make_sharded;
            // the durable wrapper's own spans (WAL commit, checkpoint,
            // recovery) need it too.
            match &mut backend {
                Backend::Durable(e) => e.set_tracer(t.clone()),
                Backend::DurableSharded(e) => e.set_tracer(t.clone()),
                _ => {}
            }
        }
        Ok(Sase {
            backend,
            deny: self.deny,
            push: self.on_metrics.take().map(MetricsPush::new),
        })
    }

    /// Reopen an existing durable deployment: load the newest valid
    /// checkpoint, let `register` re-register the same queries in the same
    /// order (derived stream types are preregistered first), restore the
    /// state, and replay the log tail. Requires
    /// [`SaseBuilder::durable`]; the other knobs must match the original
    /// deployment.
    pub fn recover(
        mut self,
        register: impl FnOnce(&mut dyn EventProcessor) -> Result<()>,
    ) -> Result<(Sase, RecoveryReport)> {
        let (dir, opts) = self.durable.take().ok_or_else(|| {
            SaseError::engine("Sase::recover requires a durable deployment (builder.durable(..))")
        })?;
        let deny = self.deny;
        let push = self.on_metrics.take().map(MetricsPush::new);
        let trace = self.trace.clone();
        match self.shards {
            None => {
                let (mut engine, report) = DurableEngine::recover(dir, opts, |snaps| {
                    let mut engine = self.make_engine();
                    if let Some(snaps) = snaps {
                        snaps.preregister_derived(engine.schemas())?;
                    }
                    register(&mut engine)?;
                    Ok(engine)
                })
                .map_err(durable_err)?;
                if let Some(t) = trace {
                    engine.set_tracer(t);
                }
                Ok((
                    Sase {
                        backend: Backend::Durable(engine),
                        deny,
                        push,
                    },
                    report,
                ))
            }
            Some(n) => {
                let (mut engine, report) = DurableEngine::recover(dir, opts, |snaps| {
                    let mut sharded = self.make_sharded(n)?;
                    if let Some(snaps) = snaps {
                        snaps.preregister_derived(ShardedEngine::schemas(&sharded))?;
                    }
                    register(&mut sharded)?;
                    Ok(sharded)
                })
                .map_err(durable_err)?;
                if let Some(t) = trace {
                    engine.set_tracer(t);
                }
                Ok((
                    Sase {
                        backend: Backend::DurableSharded(engine),
                        deny,
                        push,
                    },
                    report,
                ))
            }
        }
    }
}

impl MetricsPush {
    fn new((interval, f): (Duration, MetricsPushFn)) -> MetricsPush {
        MetricsPush {
            interval,
            last: Instant::now(),
            f,
        }
    }
}

fn durable_err(e: sase_system::DurableError) -> SaseError {
    SaseError::engine(format!("durable store: {e}"))
}

impl Sase {
    /// Start configuring a deployment.
    pub fn builder() -> SaseBuilder {
        SaseBuilder::default()
    }

    fn processor(&self) -> &dyn EventProcessor {
        match &self.backend {
            Backend::Engine(e) => e,
            Backend::Sharded(e) => e,
            Backend::Durable(e) => e,
            Backend::DurableSharded(e) => e,
        }
    }

    fn processor_mut(&mut self) -> &mut dyn EventProcessor {
        match &mut self.backend {
            Backend::Engine(e) => e,
            Backend::Sharded(e) => e,
            Backend::Durable(e) => e,
            Backend::DurableSharded(e) => e,
        }
    }

    /// Register a continuous query from source text; the returned handle
    /// addresses the query in every other facade call.
    pub fn register(&mut self, name: &str, src: &str) -> Result<QueryHandle> {
        self.register_with(name, src, PlannerOptions::default())
    }

    /// Register a continuous query with explicit planner options.
    ///
    /// When the deployment was built with [`SaseBuilder::deny`], the query
    /// is statically analyzed first and rejected (with the offending lint
    /// code) if any diagnostic reaches the configured severity.
    pub fn register_with(
        &mut self,
        name: &str,
        src: &str,
        options: PlannerOptions,
    ) -> Result<QueryHandle> {
        if let Some(threshold) = self.deny {
            let diags = self.check(src);
            if let Some(bad) = diags.iter().find(|d| d.severity >= threshold) {
                return Err(SaseError::registration(
                    name,
                    Some(bad.code.to_string()),
                    format!(
                        "denied by strict mode ({} {}): {}",
                        bad.severity, bad.code, bad.message
                    ),
                ));
            }
        }
        self.processor_mut().register_with(name, src, options)?;
        Ok(QueryHandle {
            name: Arc::from(name),
        })
    }

    /// Statically analyze query text against this deployment — schemas,
    /// functions, time scale, and already-registered queries — *without*
    /// registering it. Returns the analyzer's findings, most severe first;
    /// see [`sase_core::analyze()`] for the lint catalogue.
    pub fn check(&self, src: &str) -> Vec<Diagnostic> {
        self.processor().check(src)
    }

    /// Handle of an already-registered query, if it exists (e.g. one
    /// re-registered through [`SaseBuilder::recover`]'s callback).
    pub fn handle(&self, name: &str) -> Option<QueryHandle> {
        self.processor()
            .query_names()
            .iter()
            .any(|n| n == name)
            .then(|| QueryHandle {
                name: Arc::from(name),
            })
    }

    /// Delete a query. Returns true if it existed; its handles (and
    /// subscriptions) are dead afterwards.
    pub fn unregister(&mut self, handle: &QueryHandle) -> bool {
        self.processor_mut().unregister(&handle.name)
    }

    /// Process a batch of events on the default input stream, returning
    /// the emitted composite events (subscriptions fire as well).
    pub fn process(&mut self, events: &[Event]) -> Result<Vec<ComplexEvent>> {
        let out = self.processor_mut().process_batch(events);
        self.maybe_push();
        out
    }

    /// Process a batch on a named stream (`None` = the default stream).
    pub fn process_on(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
    ) -> Result<Vec<ComplexEvent>> {
        let out = self.processor_mut().process_batch_on(stream, events);
        self.maybe_push();
        out
    }

    /// Fire the [`SaseBuilder::on_metrics`] callback when its interval
    /// has elapsed. Called after every processed batch.
    fn maybe_push(&mut self) {
        let Some(mut push) = self.push.take() else {
            return;
        };
        if push.last.elapsed() >= push.interval {
            let snap = self.metrics();
            (push.f)(&snap);
            push.last = Instant::now();
        }
        self.push = Some(push);
    }

    /// A typed, point-in-time metrics view of the deployment: every
    /// enabled registry series (merged deterministically across engines,
    /// shards, and the durable layer) plus the per-query
    /// [`RuntimeStats`] promoted to `sase_query_*{query=…}` series.
    /// Render textually with [`sase_obs::render_prometheus`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.processor().metrics()
    }

    /// The deployment's top-level metrics registry, when metrics are
    /// enabled ([`SaseBuilder::metrics`]). Worker-local and durable-layer
    /// registries are folded in by [`Sase::metrics`], not reachable here.
    pub fn metrics_registry(&self) -> Option<&MetricsRegistry> {
        self.processor().metrics_registry()
    }

    /// Subscribe a callback to a query: it observes every emission of that
    /// query, push-style, as processing happens. Queries hosted on sharded
    /// worker threads invoke the callback on those threads.
    pub fn subscribe(
        &mut self,
        handle: &QueryHandle,
        mut sink: impl FnMut(&ComplexEvent) + Send + 'static,
    ) -> Result<()> {
        self.processor_mut()
            .add_sink(&handle.name, Box::new(move |ce| sink(ce)))
    }

    /// Subscribe a channel to a query: every emission is cloned into the
    /// returned receiver. When the receiver is dropped, deliveries are
    /// silently discarded (the subscription itself stays registered until
    /// the query is unregistered).
    pub fn subscribe_channel(
        &mut self,
        handle: &QueryHandle,
    ) -> Result<mpsc::Receiver<ComplexEvent>> {
        let (tx, rx) = mpsc::channel();
        self.subscribe(handle, move |ce| {
            let _ = tx.send(ce.clone());
        })?;
        Ok(rx)
    }

    /// Subscribe a [`Collector`] to a query — the pull-style
    /// `Vec<ComplexEvent>` workflow on top of the push API.
    pub fn collect(&mut self, handle: &QueryHandle) -> Result<Collector> {
        let collector = Collector::default();
        let buf = collector.buf.clone();
        self.subscribe(handle, move |ce| {
            buf.lock().expect("collector lock").push(ce.clone());
        })?;
        Ok(collector)
    }

    /// Names of registered queries, in registration order.
    pub fn query_names(&self) -> Vec<String> {
        self.processor().query_names()
    }

    /// Runtime counters of a query.
    pub fn stats(&self, handle: &QueryHandle) -> Result<RuntimeStats> {
        self.processor().stats(&handle.name)
    }

    /// EXPLAIN output of a query's plan.
    pub fn explain(&self, handle: &QueryHandle) -> Result<String> {
        self.processor().explain(&handle.name)
    }

    /// The source text (canonical form) of a query.
    pub fn query_text(&self, handle: &QueryHandle) -> Result<String> {
        self.processor().query_text(&handle.name)
    }

    /// The schema registry events are built against.
    pub fn schemas(&self) -> &SchemaRegistry {
        self.processor().schemas()
    }

    /// Serializable image of the deployment's complete mutable state.
    pub fn snapshot(&self) -> SnapshotSet {
        self.processor().snapshot()
    }

    /// Restore a snapshot onto a freshly built deployment with the same
    /// queries (see [`sase_core::snapshot`] for the protocol).
    pub fn restore(&mut self, snaps: &SnapshotSet) -> Result<()> {
        self.processor_mut().restore(snaps)
    }

    /// Write an atomic checkpoint of the engine state at the current log
    /// position (durable deployments only); returns the checkpoint's log
    /// position.
    pub fn checkpoint(&mut self) -> Result<u64> {
        match &mut self.backend {
            Backend::Durable(e) => e.checkpoint().map_err(durable_err),
            Backend::DurableSharded(e) => e.checkpoint().map_err(durable_err),
            _ => Err(SaseError::engine(
                "checkpoint requires a durable deployment (builder.durable(..))",
            )),
        }
    }

    /// Make every ingested batch durable (one fsync) — the host's commit
    /// cadence when `sync_each_batch` is off (durable deployments only).
    pub fn commit(&mut self) -> Result<()> {
        match &mut self.backend {
            Backend::Durable(e) => e.commit().map_err(durable_err),
            Backend::DurableSharded(e) => e.commit().map_err(durable_err),
            _ => Err(SaseError::engine(
                "commit requires a durable deployment (builder.durable(..))",
            )),
        }
    }

    /// Number of engine workers (1 for unsharded deployments).
    pub fn shard_count(&self) -> usize {
        match &self.backend {
            Backend::Engine(_) => 1,
            Backend::Sharded(e) => e.shard_count(),
            Backend::Durable(_) => 1,
            Backend::DurableSharded(e) => e.engine().shard_count(),
        }
    }

    /// Whether this deployment write-ahead-logs its ingest — i.e. whether
    /// [`commit`](Sase::commit) and [`checkpoint`](Sase::checkpoint) are
    /// meaningful.
    pub fn is_durable(&self) -> bool {
        matches!(
            self.backend,
            Backend::Durable(_) | Backend::DurableSharded(_)
        )
    }

    /// Put this deployment on the wire: serve the line protocol,
    /// HTTP/1.1, and WebSocket push on `addr` (port `0` picks an
    /// ephemeral port) until
    /// [`ServerHandle::shutdown`](sase_server::ServerHandle::shutdown),
    /// which drains in-flight ingest, flushes the WAL on durable
    /// deployments, and hands the `Sase` back as the boxed backend.
    pub fn serve(
        self,
        addr: impl std::net::ToSocketAddrs,
        config: sase_server::ServerConfig,
    ) -> sase_server::Result<sase_server::ServerHandle> {
        sase_server::Server::serve(addr, Box::new(self), config)
    }
}

impl std::fmt::Debug for Sase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shape = match &self.backend {
            Backend::Engine(_) => "engine",
            Backend::Sharded(_) => "sharded",
            Backend::Durable(_) => "durable",
            Backend::DurableSharded(_) => "durable+sharded",
        };
        f.debug_struct("Sase")
            .field("backend", &shape)
            .field("queries", &self.query_names())
            .finish()
    }
}

/// The facade is itself an [`EventProcessor`], so a `Sase` can stand in
/// anywhere a deployment is expected (pipelined stages, differential
/// tests). Every method delegates to the configured backend.
impl EventProcessor for Sase {
    fn register_with(&mut self, name: &str, src: &str, options: PlannerOptions) -> Result<()> {
        Sase::register_with(self, name, src, options).map(|_| ())
    }

    fn check(&self, src: &str) -> Vec<Diagnostic> {
        Sase::check(self, src)
    }

    fn unregister(&mut self, name: &str) -> bool {
        self.processor_mut().unregister(name)
    }

    fn process_batch_on(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
    ) -> Result<Vec<ComplexEvent>> {
        Sase::process_on(self, stream, events)
    }

    fn process_batch_tagged(
        &mut self,
        stream: Option<&str>,
        events: &[Event],
    ) -> Result<Vec<Emission>> {
        let out = self.processor_mut().process_batch_tagged(stream, events);
        self.maybe_push();
        out
    }

    fn query_names(&self) -> Vec<String> {
        self.processor().query_names()
    }

    fn stats(&self, name: &str) -> Result<RuntimeStats> {
        self.processor().stats(name)
    }

    fn metrics_registry(&self) -> Option<&MetricsRegistry> {
        Sase::metrics_registry(self)
    }

    fn metrics(&self) -> MetricsSnapshot {
        Sase::metrics(self)
    }

    fn explain(&self, name: &str) -> Result<String> {
        self.processor().explain(name)
    }

    fn query_text(&self, name: &str) -> Result<String> {
        self.processor().query_text(name)
    }

    fn add_sink(&mut self, name: &str, sink: Sink) -> Result<()> {
        self.processor_mut().add_sink(name, sink)
    }

    fn schemas(&self) -> &SchemaRegistry {
        self.processor().schemas()
    }

    fn snapshot(&self) -> SnapshotSet {
        self.processor().snapshot()
    }

    fn restore(&mut self, snaps: &SnapshotSet) -> Result<()> {
        self.processor_mut().restore(snaps)
    }
}

/// Any `Sase` deployment can be hosted by the network serving layer.
/// Graceful server shutdown calls `flush`, which on durable deployments
/// commits the WAL — every batch the server acknowledged survives crash
/// recovery; volatile deployments no-op.
impl sase_server::Backend for Sase {
    fn flush(&mut self) -> Result<()> {
        if self.is_durable() {
            self.commit()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sase_core::event::retail_registry;
    use sase_core::value::Value;

    fn exit(sase: &Sase, ts: u64, tag: i64) -> Event {
        sase.schemas()
            .build_event(
                "EXIT_READING",
                ts,
                vec![Value::Int(tag), Value::str("soap"), Value::Int(4)],
            )
            .unwrap()
    }

    #[test]
    fn builder_defaults_to_a_single_engine() {
        let mut sase = Sase::builder().schemas(retail_registry()).build().unwrap();
        assert_eq!(sase.shard_count(), 1);
        let h = sase
            .register("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag")
            .unwrap();
        assert_eq!(h.name(), "exits");
        assert_eq!(sase.query_names(), vec!["exits"]);
        assert_eq!(sase.handle("exits"), Some(h.clone()));
        assert_eq!(sase.handle("nope"), None);

        let out = sase.process(&[exit(&sase, 1, 7)]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(sase.stats(&h).unwrap().matches_emitted, 1);
        assert!(sase.explain(&h).unwrap().contains("EXIT_READING"));
        assert!(sase.query_text(&h).unwrap().contains("EXIT_READING"));
        assert!(sase.unregister(&h));
        assert!(!sase.unregister(&h));
        // Durable-only operations are typed errors on live deployments.
        assert!(sase.checkpoint().is_err());
        assert!(sase.commit().is_err());
    }

    #[test]
    fn subscriptions_push_collector_and_channel() {
        let mut sase = Sase::builder()
            .schemas(retail_registry())
            .shards(2)
            .build()
            .unwrap();
        assert_eq!(sase.shard_count(), 2);
        let exits = sase
            .register("exits", "EVENT EXIT_READING z RETURN z.TagId AS tag")
            .unwrap();
        let shelves = sase
            .register("shelves", "EVENT SHELF_READING x RETURN x.TagId AS tag")
            .unwrap();
        let collected = sase.collect(&exits).unwrap();
        let rx = sase.subscribe_channel(&shelves).unwrap();

        let shelf = sase
            .schemas()
            .build_event(
                "SHELF_READING",
                1,
                vec![Value::Int(9), Value::str("soap"), Value::Int(1)],
            )
            .unwrap();
        let out = sase.process(&[shelf, exit(&sase, 2, 7)]).unwrap();
        assert_eq!(out.len(), 2, "pull output is preserved");

        // Each subscription saw only its own query's emission.
        let drained = collected.take();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].value("tag"), Some(&Value::Int(7)));
        assert!(collected.is_empty());
        let pushed: Vec<ComplexEvent> = rx.try_iter().collect();
        assert_eq!(pushed.len(), 1);
        assert_eq!(pushed[0].value("tag"), Some(&Value::Int(9)));
    }

    #[test]
    fn durable_build_and_recover_round_trip() {
        let dir = std::env::temp_dir().join(format!("sase-facade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let q = "EVENT SEQ(SHELF_READING x, EXIT_READING z) \
                 WHERE x.TagId = z.TagId WITHIN 100 RETURN x.TagId AS tag";
        let mk = || {
            Sase::builder()
                .schemas(retail_registry())
                .durable(&dir, DurableOptions::default())
        };
        let mut sase = mk().build().unwrap();
        let h = sase.register("pairs", q).unwrap();
        let shelf = sase
            .schemas()
            .build_event(
                "SHELF_READING",
                1,
                vec![Value::Int(7), Value::str("soap"), Value::Int(1)],
            )
            .unwrap();
        sase.process(&[shelf]).unwrap();
        sase.checkpoint().unwrap();
        assert_eq!(sase.stats(&h).unwrap().events_processed, 1);
        drop(sase); // crash

        // A second `build` on the same dir must refuse; `recover` resumes.
        assert!(mk().build().is_err());
        let (mut sase, report) = mk()
            .recover(|p| p.register("pairs", q).map(|_| ()))
            .unwrap();
        assert_eq!(report.records_replayed, 0, "checkpoint covers the log");
        let h = sase.handle("pairs").unwrap();
        let out = sase.process(&[exit(&sase, 2, 7)]).unwrap();
        assert_eq!(out.len(), 1, "pending sequence completed after recovery");
        assert_eq!(sase.stats(&h).unwrap().matches_emitted, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
