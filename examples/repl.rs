//! An interactive console over a running SASE deployment: register SASE
//! queries, feed scripted events, and run ad-hoc SQL against the event
//! database — the headless equivalent of the paper's UI (§3), built on
//! the [`Sase`] facade.
//!
//! ```text
//! cargo run --example repl
//! ```
//!
//! Commands:
//!
//! ```text
//! query <name> <sase-query-on-one-line>   register a continuous query
//! check <sase-query-on-one-line>          static analysis without registering
//! drop <name>                             delete a query
//! event <TYPE> <ts> <tag> <product> <area> push one event
//! sql <statement>                         ad-hoc SQL on the event database
//! explain <name>                          show the query plan
//! stats <name>                            runtime counters (aligned table)
//! watch [name]                            runtime counter tables, one per query
//! metrics                                 Prometheus-style metrics dump
//! queries                                 list registered queries
//! connect <addr>                          attach to a served deployment
//! disconnect                              back to the embedded deployment
//! quit
//! ```
//!
//! After `connect`, the same commands (`query`, `check`, `drop`, `event`,
//! `explain`, `stats`, `metrics`, `queries`) run against the remote
//! server over the line protocol; queries registered there are owned by
//! this connection. `sql` and `watch` stay local-only.

use std::io::{self, BufRead, Write};

use sase::core::event::SchemaRegistry;
use sase::core::value::Value;
use sase::db::Database;
use sase::server::client::Client;
use sase::server::wire::TickMode;
use sase::stream::register_reading_schemas;
use sase::system::{register_db_builtins, retail_area_descriptions, seed_area_info};
use sase::{QueryHandle, Sase};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = sase::core::event::SchemaRegistry::new();
    register_reading_schemas(&registry)?;
    let db = Database::new();
    seed_area_info(&db, &retail_area_descriptions())?;
    let functions = sase::core::functions::FunctionRegistry::with_stdlib();
    register_db_builtins(&functions, &db)?;
    let mut sase = Sase::builder()
        .schemas(registry.clone())
        .functions(functions)
        .metrics(true)
        .build()?;

    println!("SASE console. `help` for commands, `quit` to exit.");
    let stdin = io::stdin();
    let mut out = io::stdout();
    let mut remote: Option<(String, Client)> = None;
    loop {
        match &remote {
            Some((addr, _)) => print!("sase[{addr}]> "),
            None => print!("sase> "),
        }
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        if matches!(cmd, "quit" | "exit") {
            break;
        }
        if cmd == "connect" {
            // Attach to a served deployment; subsequent commands speak the
            // line protocol against it.
            match Client::connect(rest).and_then(|mut c| c.ping().map(|()| c)) {
                Ok(c) => {
                    println!("connected to {rest}");
                    remote = Some((rest.to_string(), c));
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if cmd == "disconnect" {
            println!(
                "{}",
                if remote.take().is_some() {
                    "disconnected"
                } else {
                    "not connected"
                }
            );
            continue;
        }
        if let Some((_, client)) = remote.as_mut() {
            remote_cmd(client, &registry, cmd, rest);
            continue;
        }
        let result = match cmd {
            "help" => {
                println!(
                    "query <name> <text> | check <text> | drop <name> | \
                     event <TYPE> <ts> <tag> <product> <area>\n\
                     sql <stmt> | explain <name> | stats <name> | watch [name] | \
                     metrics | queries | connect <addr> | quit"
                );
                Ok(())
            }
            "query" => match rest.split_once(' ') {
                // Each registered query gets a live push subscription, so
                // detections print as events arrive. Static analysis runs
                // first; its findings print as compiler-style diagnostics.
                Some((name, src)) => {
                    print_diagnostics(&sase.check(src));
                    sase.register(name, src)
                        .and_then(|handle| {
                            let label = name.to_string();
                            sase.subscribe(&handle, move |d| println!("  [{label}] {d}"))
                        })
                        .map(|_| println!("registered `{name}`"))
                        .map_err(|e| e.to_string())
                }
                None => Err("usage: query <name> <text>".to_string()),
            }
            .map_err(print_err),
            "check" => {
                let diags = sase.check(rest);
                if diags.is_empty() {
                    println!("no diagnostics");
                } else {
                    print_diagnostics(&diags);
                }
                Ok(())
            }
            "drop" => {
                match sase.handle(rest) {
                    Some(h) if sase.unregister(&h) => println!("dropped `{rest}`"),
                    _ => println!("no query named `{rest}`"),
                }
                Ok(())
            }
            "event" => push_event(&mut sase, &registry, rest).map_err(print_err),
            "sql" => match db.execute(rest) {
                Ok(sase::db::StatementResult::Rows(rs)) => {
                    print!("{}", rs.render());
                    Ok(())
                }
                Ok(other) => {
                    println!("{other:?}");
                    Ok(())
                }
                Err(e) => {
                    println!("error: {e}");
                    Ok(())
                }
            },
            "explain" => {
                match named(&sase, rest).and_then(|h| sase.explain(&h).map_err(|e| e.to_string())) {
                    Ok(text) => {
                        println!("{text}");
                        Ok(())
                    }
                    Err(e) => {
                        println!("error: {e}");
                        Ok(())
                    }
                }
            }
            "stats" => {
                match named(&sase, rest).and_then(|h| sase.stats(&h).map_err(|e| e.to_string())) {
                    Ok(s) => {
                        println!("{s}");
                        Ok(())
                    }
                    Err(e) => {
                        println!("error: {e}");
                        Ok(())
                    }
                }
            }
            "watch" => {
                // One aligned counter table per query (or just the named
                // one) — a point-in-time dashboard of the deployment.
                let names = if rest.is_empty() {
                    sase.query_names()
                } else {
                    vec![rest.to_string()]
                };
                for name in names {
                    match named(&sase, &name)
                        .and_then(|h| sase.stats(&h).map_err(|e| e.to_string()))
                    {
                        Ok(s) => println!("{name}:\n{}", s.render_table()),
                        Err(e) => println!("error: {e}"),
                    }
                }
                Ok(())
            }
            "metrics" => {
                // The full merged deployment snapshot in Prometheus text
                // exposition format (0.0.4).
                print!("{}", sase::render_prometheus(&sase.metrics()));
                Ok(())
            }
            "queries" => {
                for q in sase.query_names() {
                    println!("{q}");
                }
                Ok(())
            }
            other => {
                println!("unknown command `{other}`; try `help`");
                Ok(())
            }
        };
        let _: Result<(), ()> = result;
    }
    Ok(())
}

fn named(sase: &Sase, name: &str) -> Result<QueryHandle, String> {
    sase.handle(name)
        .ok_or_else(|| format!("no query named `{name}`"))
}

fn print_err(e: impl std::fmt::Display) {
    println!("error: {e}");
}

fn print_diagnostics(diags: &[sase::Diagnostic]) {
    for d in diags {
        println!("  {d}");
    }
}

fn build_reading(
    registry: &SchemaRegistry,
    rest: &str,
) -> Result<sase::core::event::Event, String> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    let [ty, ts, tag, product, area] = parts.as_slice() else {
        return Err("usage: event <TYPE> <ts> <tag> <product> <area>".to_string());
    };
    registry
        .build_event(
            ty,
            ts.parse().map_err(|e| format!("bad ts: {e}"))?,
            vec![
                Value::Int(tag.parse().map_err(|e| format!("bad tag: {e}"))?),
                Value::str(*product),
                Value::Int(area.parse().map_err(|e| format!("bad area: {e}"))?),
            ],
        )
        .map_err(|e| e.to_string())
}

fn push_event(sase: &mut Sase, registry: &SchemaRegistry, rest: &str) -> Result<(), String> {
    let event = build_reading(registry, rest)?;
    let detections = sase.process(&[event]).map_err(|e| e.to_string())?;
    println!("ok ({} detections)", detections.len());
    Ok(())
}

/// Dispatch a console command over the line protocol. Transport and
/// server errors print and leave the connection up; the user can
/// `disconnect` if the far side is gone.
fn remote_cmd(client: &mut Client, registry: &SchemaRegistry, cmd: &str, rest: &str) {
    let result: Result<(), sase::ServerError> = (|| {
        match cmd {
            "help" => println!(
                "remote: query <name> <text> | check <text> | drop <name> | \
                 event <TYPE> <ts> <tag> <product> <area>\n\
                 explain <name> | stats <name> | metrics | queries | \
                 disconnect | quit"
            ),
            "query" => match rest.split_once(' ') {
                Some((name, src)) => {
                    for d in client.register(name, src)? {
                        println!("  {d}");
                    }
                    println!("registered `{name}` (owned by this connection)");
                }
                None => println!("usage: query <name> <text>"),
            },
            "check" => {
                let diags = client.check(rest)?;
                if diags.is_empty() {
                    println!("no diagnostics");
                }
                for d in diags {
                    println!("  {d}");
                }
            }
            "drop" => {
                if client.unregister(rest)? {
                    println!("dropped `{rest}`");
                } else {
                    println!("no query named `{rest}`");
                }
            }
            "event" => match build_reading(registry, rest) {
                Ok(event) => {
                    let out = client.ingest(None, TickMode::Explicit, &[event])?;
                    for d in &out {
                        println!("  {d}");
                    }
                    println!("ok ({} detections)", out.len());
                }
                Err(e) => println!("error: {e}"),
            },
            "explain" => println!("{}", client.explain(rest)?),
            "stats" => println!("{}", client.stats(rest)?),
            "metrics" => print!("{}", client.metrics()?),
            "queries" => {
                for q in client.queries()? {
                    println!("{q}");
                }
            }
            "sql" | "watch" => println!("`{cmd}` is local-only; `disconnect` first"),
            other => println!("unknown command `{other}`; try `help`"),
        }
        Ok(())
    })();
    if let Err(e) = result {
        println!("error: {e}");
    }
}
