//! The paper's live demonstration (§4), end to end: a simulated retail
//! floor with four readers, scripted shoppers / shoplifters / misplaced
//! inventory, the five-layer cleaning pipeline, the demo's continuous
//! queries (shoplifting, misplaced inventory, archiving rules), and the
//! Figure 3 UI windows rendered as text.
//!
//! ```text
//! cargo run --example retail_store [-- --show-dataflow]
//! ```

use sase::core::value::Value;
use sase::rfid::noise::NoiseModel;
use sase::rfid::scenario::RetailScenario;
use sase::system::SaseSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let show_dataflow = std::env::args().any(|a| a == "--show-dataflow");

    // Assemble the system: devices -> cleaning -> event processor -> DB.
    let mut sys = SaseSystem::retail(NoiseModel::realistic(), 42, 40)?;
    sys.register_demo_queries()?;
    sys.register_misplaced_query("misplaced_milk", "milk", 1)?;

    // The live demo cast: 6 honest shoppers, 2 shoplifters, 1 misplacer.
    let scenario = RetailScenario::build(sys.config(), 99, 6, 2, 1);
    println!(
        "cast: honest={:?} shoplifters={:?} misplaced={:?}",
        scenario.truth.honest, scenario.truth.shoplifted, scenario.truth.misplaced
    );
    println!("running {} scan cycles...\n", scenario.duration);
    sys.run_scenario(&scenario)?;

    // The "Message Results" window: shoplifting alerts with the DB-joined
    // exit description (the _retrieveLocation call of Q1).
    println!("== shoplifting alerts ==");
    let mut flagged = Vec::new();
    for d in sys.detections_for("shoplifting") {
        let tag = d.value("x.TagId").and_then(Value::as_int).unwrap_or(-1);
        if flagged.contains(&tag) {
            continue; // one alert per item for the demo printout
        }
        flagged.push(tag);
        println!(
            "  item {tag} ({}) left via {}",
            d.value("x.ProductName").unwrap(),
            d.value("_retrieveLocation(z.AreaId)").unwrap()
        );
    }
    assert_eq!(
        {
            let mut f = flagged.clone();
            f.sort_unstable();
            f
        },
        scenario.truth.shoplifted,
        "detected exactly the planted shoplifters"
    );

    println!("\n== misplaced inventory alerts ==");
    let mut seen = Vec::new();
    for d in sys.detections_for("misplaced_milk") {
        let tag = d.value("x.TagId").and_then(Value::as_int).unwrap_or(-1);
        if seen.contains(&tag) {
            continue;
        }
        seen.push(tag);
        println!(
            "  item {tag} found on shelf area {}",
            d.value("x.AreaId").unwrap()
        );
    }

    // Archiving rules kept the event database current: ask it where the
    // misplaced item is now.
    println!("\n== event database: track-and-trace over live data ==");
    for &item in &scenario.truth.misplaced {
        let stay = sys.track_and_trace().current_location(item)?;
        println!("  current location of item {item}: {stay:?}");
        print!("{}", sys.track_and_trace().render_history(item)?);
    }

    // Cleaning statistics: what the five layers absorbed.
    let s = sys.cleaning_stats();
    println!("\n== cleaning and association layer ==");
    println!("  raw readings seen:    {}", s.anomaly.seen);
    println!(
        "  anomalies dropped:    {} truncated, {} spurious",
        s.anomaly.dropped_truncated, s.anomaly.dropped_spurious
    );
    println!("  smoothing interpolated: {}", s.smoothing.interpolated);
    println!("  duplicates suppressed:  {}", s.dedup.suppressed);
    println!("  events generated:       {}", s.events.generated);

    if show_dataflow {
        // The full Figure 3 UI: all five windows.
        println!("\n{}", sys.ui_report().render());
    }
    Ok(())
}
