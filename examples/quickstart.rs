//! Quickstart: build the system through the [`Sase`] facade, register the
//! paper's Q1 (shoplifting) for a typed handle, subscribe to its output
//! push-style, and push a hand-made event stream through it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sase::core::event::retail_registry;
use sase::core::value::Value;
use sase::Sase;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Schemas for the retail scenario: SHELF_READING, COUNTER_READING,
    // EXIT_READING, each with (TagId, ProductName, AreaId). The builder
    // composes deployments too: `.shards(4)` for a sharded engine,
    // `.durable(dir, opts)` for write-ahead logging + checkpoints.
    let registry = retail_registry();
    let mut sase = Sase::builder().schemas(registry.clone()).build()?;

    // Q1 from the paper, verbatim (§2.1.1): items that were picked at a
    // shelf and taken out of the store without being checked out.
    // Registration returns a typed handle used for everything else.
    let shoplifting = sase.register(
        "shoplifting",
        "EVENT SEQ(SHELF_READING x, !(COUNTER_READING y), EXIT_READING z)
         WHERE x.TagId = y.TagId AND x.TagId = z.TagId
         WITHIN 12 hours
         RETURN x.TagId, x.ProductName, z.AreaId",
    )?;

    println!("{}", sase.explain(&shoplifting)?);

    // Push-based output: every detection is delivered to the subscription
    // as it happens (no polling of return values required).
    sase.subscribe(&shoplifting, |detection| {
        println!("ALERT: {detection}");
    })?;

    // A tiny stream: tag 42 is shoplifted, tag 7 checks out properly.
    let ev = |ty: &str, ts: u64, tag: i64, product: &str, area: i64| {
        registry
            .build_event(
                ty,
                ts,
                vec![Value::Int(tag), Value::str(product), Value::Int(area)],
            )
            .expect("schema-conformant")
    };
    let stream = vec![
        ev("SHELF_READING", 10, 42, "soap", 1),
        ev("SHELF_READING", 12, 7, "milk", 2),
        ev("COUNTER_READING", 95, 7, "milk", 3),
        ev("EXIT_READING", 110, 7, "milk", 4),
        ev("EXIT_READING", 120, 42, "soap", 4),
    ];
    sase.process(&stream)?;

    let stats = sase.stats(&shoplifting)?;
    println!(
        "processed {} events, emitted {} matches, {} killed by negation",
        stats.events_processed, stats.matches_emitted, stats.dropped_by_negation
    );
    Ok(())
}
