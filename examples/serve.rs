//! Put a SASE deployment on the wire: serve the line protocol, HTTP/1.1,
//! and WebSocket push over a retail deployment with two standing queries
//! preregistered, then accept remote registrations, ingest, and
//! subscriptions until `quit`.
//!
//! ```text
//! cargo run --example serve                      # listen on 127.0.0.1:7878
//! cargo run --example serve -- 0.0.0.0:9000      # listen elsewhere
//! cargo run --example serve -- --test            # self-check and exit
//! ```
//!
//! While serving, try from another shell:
//!
//! ```text
//! curl -X POST 'http://127.0.0.1:7878/query?name=watch' \
//!      --data 'EVENT EXIT_READING z RETURN z.TagId AS tag'
//! curl -X POST 'http://127.0.0.1:7878/ingest' --data 'EXIT_READING 12 7 soap 4'
//! curl 'http://127.0.0.1:7878/metrics'
//! ```
//!
//! `--test` drives every protocol against an ephemeral port — line
//! protocol lifecycle, WebSocket push, HTTP metrics — and exits nonzero
//! on any divergence; CI runs it as the serve smoke gate.

use std::io::{BufRead, Read, Write};
use std::net::TcpStream;

use sase::core::event::{retail_registry, Event, SchemaRegistry};
use sase::core::value::Value;
use sase::server::client::{Client, PushClient};
use sase::server::wire::TickMode;
use sase::{Sase, ServerConfig};

/// Queries preregistered by the server (unowned: any session may drop
/// them over HTTP, none may over the line protocol).
const QUERIES: [(&str, &str); 2] = [
    (
        "pairs",
        "EVENT SEQ(SHELF_READING a, EXIT_READING b) \
         WHERE a.TagId = b.TagId WITHIN 50 RETURN a.TagId AS tag",
    ),
    (
        "exits",
        "EVENT EXIT_READING z RETURN z.TagId AS tag, z.AreaId AS area",
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or(if test_mode {
            "127.0.0.1:0"
        } else {
            "127.0.0.1:7878"
        });

    let registry = retail_registry();
    let mut sase = Sase::builder()
        .schemas(registry.clone())
        .metrics(true)
        .build()?;
    for (name, src) in QUERIES {
        sase.register(name, src)?;
    }

    let handle = sase.serve(addr, ServerConfig::default())?;
    let local = handle.local_addr();

    if test_mode {
        let result = self_check(local, &registry);
        let backend = handle.shutdown();
        assert_eq!(backend.query_names().len(), 3, "registered queries survive");
        result?;
        println!("serve self-check passed on {local}");
        return Ok(());
    }

    println!("serving on {local}");
    println!("  line protocol : sase::server::client::Client::connect(\"{local}\")");
    println!("  http          : curl http://{local}/metrics");
    println!("  websocket push: ws://{local}/ws  (subscribe <query>)");
    println!("queries: {}", sase_query_list());
    println!("type `quit` to shut down gracefully.");
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        if matches!(line?.trim(), "quit" | "exit") {
            break;
        }
    }
    let backend = handle.shutdown();
    println!(
        "drained; {} queries at shutdown",
        backend.query_names().len()
    );
    Ok(())
}

fn sase_query_list() -> String {
    QUERIES
        .iter()
        .map(|(n, _)| *n)
        .collect::<Vec<_>>()
        .join(", ")
}

fn reading(reg: &SchemaRegistry, ty: &str, ts: u64, tag: i64) -> Event {
    reg.build_event(
        ty,
        ts,
        vec![Value::Int(tag), Value::str("soap"), Value::Int(4)],
    )
    .expect("retail schema")
}

/// Drive all three protocols against the served deployment; any
/// divergence is an `Err` (or a panic with context), which `main` turns
/// into a nonzero exit.
fn self_check(
    addr: std::net::SocketAddr,
    reg: &SchemaRegistry,
) -> Result<(), Box<dyn std::error::Error>> {
    // Line protocol: lifecycle end to end.
    let mut client = Client::connect(addr)?;
    client.ping()?;
    assert_eq!(client.queries()?, vec!["pairs".to_string(), "exits".into()]);
    let diags = client.register(
        "watch",
        "EVENT COUNTER_READING c RETURN c.TagId AS t, c.AreaId AS area",
    )?;
    assert!(
        diags.iter().all(|d| d.severity < sase::Severity::Error),
        "shipped query must be free of error findings: {diags:?}"
    );

    // WebSocket push: subscribe before the detection fires.
    let mut push = PushClient::connect(addr)?;
    push.subscribe("pairs")?;
    push.ping()?;

    let batch = [
        reading(reg, "SHELF_READING", 1, 7),
        reading(reg, "EXIT_READING", 2, 7),
    ];
    let out = client.ingest(None, TickMode::Explicit, &batch)?;
    assert_eq!(out.len(), 2, "pairs + watch-free exits fire: {out:?}");
    let pairs_line = out
        .iter()
        .map(ToString::to_string)
        .find(|l| l.starts_with("[pairs@"))
        .expect("pairs emission");
    let pushed = push.next_event()?.expect("push before close");
    assert_eq!(pushed, pairs_line, "push must mirror the wire emission");
    push.unsubscribe("pairs")?;
    push.close()?;

    let stats = client.stats("pairs")?;
    assert_eq!(stats.matches_emitted, 1, "one pair detected: {stats:?}");

    // HTTP: the Prometheus exposition covers server + deployment series.
    let metrics = http_get(addr, "/metrics")?;
    for family in [
        "sase_server_connections",
        "sase_server_ingest_batches_total",
        "sase_query_matches_emitted",
    ] {
        assert!(metrics.contains(family), "missing metric family {family}");
    }
    let wire_metrics = client.metrics()?;
    assert!(wire_metrics.contains("sase_server_connections"));
    Ok(())
}

/// Minimal HTTP/1.1 GET against the same listener.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<String, Box<dyn std::error::Error>> {
    let mut sock = TcpStream::connect(addr)?;
    write!(
        sock,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    sock.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!("GET {path}: {}", head.lines().next().unwrap_or("")).into());
    }
    Ok(body.to_string())
}
