//! The Cleaning and Association Layer in isolation (§3): feed deliberately
//! dirty raw RFID readings through the five components and watch what each
//! one does.
//!
//! ```text
//! cargo run --example cleaning_pipeline
//! ```

use std::sync::Arc;

use sase::core::event::SchemaRegistry;
use sase::stream::{
    register_reading_schemas, CleaningConfig, CleaningPipeline, RawReading, RawTag, StaticOns,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CleaningConfig::retail_demo();
    let registry = SchemaRegistry::new();
    register_reading_schemas(&registry)?;
    let mut ons = StaticOns::new();
    ons.insert(cfg.make_tag(1), "soap", "toiletries", 299);
    ons.insert(cfg.make_tag(2), "milk", "dairy", 199);
    let mut pipeline = CleaningPipeline::new(cfg.clone(), registry, Arc::new(ons));

    // Tick 0: a messy scan cycle.
    let tick0 = vec![
        RawReading::full(cfg.make_tag(1), 1, 0), // genuine: soap on shelf 1
        RawReading::full(cfg.make_tag(1), 1, 0), // duplicate capture
        RawReading::full(0xDEAD_BEEF_0000_0001, 1, 0), // ghost code
        RawReading {
            tag: RawTag::Truncated {
                partial: 0x2A,
                bits: 16,
            },
            reader: 1,
            tick: 0,
        }, // truncated capture
        RawReading::full(cfg.make_tag(2), 3, 0), // genuine: milk at counter
        RawReading::full(cfg.make_tag(999), 4, 0), // valid code, unknown to ONS
    ];
    println!("tick 0: {} raw readings in", tick0.len());
    for e in pipeline.process_tick(0, &tick0)? {
        println!("  event out: {e}");
    }

    // Ticks 1-2: the soap is missed by the reader (false negatives); the
    // smoother knows it has not moved.
    for tick in 1..=2 {
        println!("tick {tick}: 0 raw readings in (soap missed by reader)");
        for e in pipeline.process_tick(tick, &[])? {
            println!("  event out: {e}");
        }
    }

    // Tick 5: the soap reappears after the smoothing window lapsed.
    println!("tick 5: soap read again");
    for e in pipeline.process_tick(5, &[RawReading::full(cfg.make_tag(1), 1, 5)])? {
        println!("  event out: {e}");
    }

    let s = pipeline.stats();
    println!("\nper-layer statistics:");
    println!("  anomaly filter : {:?}", s.anomaly);
    println!("  smoothing      : {:?}", s.smoothing);
    println!("  time conversion: {:?}", s.time);
    println!("  deduplication  : {:?}", s.dedup);
    println!("  event generator: {:?}", s.events);
    Ok(())
}
