//! Track-and-trace over a pre-populated event database (§4): generate a
//! warehouse/supply-chain history (loading, unloading, re-boxing, stocking),
//! archive it, then answer the paper's two queries — current location and
//! movement history — plus ad-hoc SQL over the same tables.
//!
//! ```text
//! cargo run --example track_and_trace
//! ```

use sase::db::{Database, TrackAndTrace};
use sase::rfid::warehouse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "We pre-populate our Event Database with RFID data that simulates
    // typical warehouse and retail store workloads..."
    let trace = warehouse::generate(7, 25, 4);
    println!(
        "generated supply-chain history: {} items, {} containers, {} movements, {} containment changes",
        trace.items.len(),
        trace.containers.len(),
        trace.movements.len(),
        trace.containments.len()
    );

    let db = Database::new();
    let tnt = TrackAndTrace::open(db.clone())?;
    for m in &trace.movements {
        tnt.locations()
            .update_location(m.item, m.area, m.ts as i64)?;
    }
    for c in &trace.containments {
        if c.added {
            tnt.containments()
                .add_to_container(c.item, c.container, c.ts as i64)?;
        } else {
            tnt.containments()
                .remove_from_container(c.item, c.ts as i64)?;
        }
    }

    // Query 1 (§4): current location of an item.
    let item = trace.items[0];
    let stay = tnt.current_location(item)?.expect("item is somewhere");
    println!(
        "\ncurrent location of item {item}: area {} (since t={})",
        stay.area, stay.time_in
    );

    // Query 2 (§4): movement history — location and containment changes.
    println!("\n{}", tnt.render_history(item)?);

    // Ad-hoc SQL over the same event database (the UI's other input path).
    println!("ad-hoc SQL: items per area right now");
    let rs = db.query(
        "SELECT area, count(*) AS items FROM item_location \
         WHERE time_out = -1 GROUP BY area ORDER BY area",
    )?;
    print!("{}", rs.render());

    println!("\nad-hoc SQL: the five busiest containers ever");
    let rs = db.query(
        "SELECT container, count(*) AS stints FROM containment \
         GROUP BY container ORDER BY stints DESC, container LIMIT 5",
    )?;
    print!("{}", rs.render());

    // Joins work too: where is each boxed stint's item right now?
    println!("\nad-hoc SQL (join): current area of every item ever boxed in container 1000");
    let rs = db.query(
        "SELECT containment.item, item_location.area FROM containment \
         JOIN item_location ON containment.item = item_location.item \
         WHERE containment.container = 1000 AND item_location.time_out = -1 \
         ORDER BY containment.item LIMIT 5",
    )?;
    print!("{}", rs.render());
    Ok(())
}
