//! Offline stand-in for the `criterion` crate (API-compatible subset).
//!
//! Supports the harness surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], `sample_size`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a simple mean-of-samples
//! measurement printed per benchmark. Under `cargo test` (or with
//! `--test` in the args) every benchmark body runs exactly once, so
//! bench targets double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u64,
}

impl Bencher {
    /// Measure `f`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.samples.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn mean(&self) -> Option<Duration> {
        let n = self.samples.len() as u32;
        if n == 0 {
            return None;
        }
        Some(self.samples.iter().sum::<Duration>() / n)
    }
}

/// Benchmark registry and runner (subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench executables with `--test`; `cargo bench`
        // passes `--bench`. In test mode run each body exactly once.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            test_mode,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.effective_samples(None);
        run_one(id, samples, f);
        self
    }

    fn effective_samples(&self, group_override: Option<usize>) -> u64 {
        if self.test_mode {
            1
        } else {
            group_override.unwrap_or(self.sample_size) as u64
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: u64, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters: samples,
    };
    f(&mut b);
    match b.mean() {
        Some(mean) => println!("bench: {label:<40} {mean:>12.2?} /iter ({samples} samples)"),
        None => println!("bench: {label:<40} (no measurement)"),
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        let samples = self.criterion.effective_samples(self.sample_size);
        run_one(&label, samples, f);
        self
    }

    /// Benchmark `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a bench executable from its groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion {
            sample_size: 3,
            test_mode: false,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &i| {
            b.iter(|| {
                runs += 1;
                i + 1
            })
        });
        g.finish();
        assert_eq!(runs, 2);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 10,
            test_mode: true,
        };
        let mut runs = 0;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
