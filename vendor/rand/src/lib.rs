//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Implements the slice of `rand` the workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen_range` (over integer `Range`/`RangeInclusive`), `gen_bool`,
//! and `gen`. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic across platforms, which the workspace's seeded scenarios
//! and differential tests rely on.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample(self) < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Prelude matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..8u64);
            assert!((3..8).contains(&v));
            let w = r.gen_range(1..=4usize);
            assert!((1..=4).contains(&w));
            let n = r.gen_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_rate_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }
}
