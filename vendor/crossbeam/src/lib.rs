//! Offline stand-in for the `crossbeam` crate (channel subset).
//!
//! Provides `crossbeam::channel::{bounded, Sender, Receiver}` with the
//! semantics the workspace relies on (blocking bounded send, iteration
//! until all senders drop), implemented over `std::sync::mpsc`.

pub mod channel {
    //! Bounded MPSC channels (subset of `crossbeam-channel`).

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; errors only when every receiver has dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking receive; errors when all senders have dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterate over received values until every sender drops.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Borrowed blocking iterator over a [`Receiver`].
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator over a [`Receiver`].
    #[derive(Debug)]
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Create a bounded channel with the given capacity.
    ///
    /// Capacity 0 is a rendezvous channel, as in crossbeam.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded(4);
        std::thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
