//! Offline stand-in for the `parking_lot` crate (API-compatible subset).
//!
//! The container this workspace builds in has no network access to
//! crates.io, so the workspace vendors the small slice of `parking_lot`
//! it actually uses: non-poisoning [`RwLock`] and [`Mutex`] built on
//! `std::sync`. Poisoned locks are recovered transparently (`parking_lot`
//! has no poisoning), which matches its semantics for our purposes.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Non-poisoning reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (never poisons).
    pub fn read(&self) -> StdRwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard (never poisons).
    pub fn write(&self) -> StdRwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Non-poisoning mutex (subset of `parking_lot::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Guard aliases matching `parking_lot`'s names.
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// Write-guard alias.
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;
/// Mutex-guard alias.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
