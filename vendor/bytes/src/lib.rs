//! Offline stand-in for the `bytes` crate (API-compatible subset).
//!
//! Implements [`Bytes`], [`BytesMut`], and the big-endian accessors of the
//! [`Buf`]/[`BufMut`] traits that the workspace's wire format uses. Cheap
//! zero-copy sharing is approximated with `Arc<[u8]>` slices.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Bytes remaining (the current length).
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice sharing the same backing storage.
    ///
    /// The range is interpreted relative to the current view, as in the
    /// real `bytes` crate. Panics when out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow");
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self { data: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", Bytes::copy_from_slice(&self.data))
    }
}

/// Read-side accessors (big-endian), subset of `bytes::Buf`.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Consume `n` bytes, returning them.
    fn chunk_take(&mut self, n: usize) -> &[u8];

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.chunk_take(1)[0]
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.chunk_take(2).try_into().unwrap())
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.chunk_take(4).try_into().unwrap())
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.chunk_take(8).try_into().unwrap())
    }

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize) {
        self.chunk_take(n);
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk_take(&mut self, n: usize) -> &[u8] {
        self.take(n)
    }
}

/// Write-side accessors (big-endian), subset of `bytes::BufMut`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0x5A5E);
        b.put_u64(7);
        b.put_u8(3);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 11);
        assert_eq!(frozen.get_u16(), 0x5A5E);
        assert_eq!(frozen.get_u64(), 7);
        assert_eq!(frozen.get_u8(), 3);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[1, 2, 3]);
        assert_eq!(&*s.slice(1..2), &[2]);
    }

    #[test]
    fn mutate_through_bytes_mut() {
        let b = Bytes::from(vec![9, 9]);
        let mut m = BytesMut::from(&b[..]);
        m[0] = 1;
        assert_eq!(&*m.freeze(), &[1, 9]);
    }
}
