//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of type `Self::Value`.
///
/// Unlike real proptest there is no shrink tree: `generate` draws one
/// value. Failing cases are replayed via the printed seed instead.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy for `Vec`s; see [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: Range<usize>) -> Self {
        assert!(size.start < size.end, "empty vec size range");
        Self { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `&str` regex strategies. Only the patterns the workspace uses are
/// supported; everything else panics loudly rather than silently
/// generating the wrong language.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        match *self {
            ".*" => arbitrary_string(rng),
            other => panic!("proptest shim: unsupported regex strategy {other:?}"),
        }
    }
}

fn arbitrary_char(rng: &mut StdRng) -> char {
    // Bias toward ASCII (where the grammars live), with a tail of
    // arbitrary Unicode scalars to keep the lexers honest.
    match rng.gen_range(0u32..4) {
        0 => rng.gen_range(0x20u32..0x7F).try_into().unwrap(),
        1 => match rng.gen_range(0u32..8) {
            0 => '\n',
            1 => '\t',
            2 => '\r',
            3 => '\0',
            4 => '(',
            5 => ')',
            6 => '\'',
            _ => '"',
        },
        2 => rng
            .gen_range(0x01u32..0x100)
            .try_into()
            .unwrap_or('\u{FFFD}'),
        _ => loop {
            if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10_FFFF)) {
                break c;
            }
        },
    }
}

fn arbitrary_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..64);
    (0..len).map(|_| arbitrary_char(rng)).collect()
}

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        arbitrary_char(rng)
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut StdRng) -> String {
        arbitrary_string(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}
