//! Case-running machinery for the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5A5E_2007)
}

/// Run `f` once per case with a deterministic per-case RNG.
///
/// The seed is derived from `PROPTEST_SEED` (default `0x5A5E_2007`), the
/// property name, and the case index, so any failure report can be
/// replayed exactly. `PROPTEST_CASES` caps the case count for quick runs.
pub fn run_cases<F: FnMut(&mut StdRng)>(config: &ProptestConfig, name: &str, mut f: F) {
    let mut cases = config.cases;
    if let Some(cap) = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
    {
        cases = cases.min(cap);
    }
    let base = base_seed();
    let name_hash = fnv1a(name);
    for case in 0..cases {
        let seed = base ^ name_hash.wrapping_add(0x9E37_79B9 * case as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest `{name}` failed at case {case}/{cases} \
                 (replay with PROPTEST_SEED={base} — per-case seed {seed:#x})"
            );
            std::panic::resume_unwind(panic);
        }
    }
}
