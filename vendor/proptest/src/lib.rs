//! Offline stand-in for the `proptest` crate (API-compatible subset).
//!
//! The workspace builds in a container with no crates.io access, so this
//! shim implements exactly the surface the test suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support,
//! * integer-range, tuple, `&str`-regex (`".*"` only), and
//!   [`collection::vec`] strategies, plus [`Strategy::prop_map`],
//! * [`any`] for `bool`, `char`, integers, and `String`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! There is **no shrinking**: a failing case prints its generated inputs
//! and the deterministic seed so it can be replayed. Case counts honour
//! `ProptestConfig::with_cases` and the `PROPTEST_CASES` env override.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, size)
    }
}

/// Arbitrary-value strategies (subset of `proptest::arbitrary`).
pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a property; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Assert inequality inside a property; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` runs the
/// body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __case = {
                    let mut __s = String::new();
                    $(__s.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &$arg));)+
                    __s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body));
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case failed for `{}` with inputs:\n{}",
                        stringify!($name), __case);
                    ::std::panic::resume_unwind(__panic);
                }
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, y in -4i64..4, z in 0usize..1) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert_eq!(z, 0);
        }

        #[test]
        fn tuples_and_maps(v in crate::collection::vec((0u32..5, 1u64..3), 0..10)) {
            prop_assert!(v.len() < 10);
            for (a, b) in v {
                prop_assert!(a < 5);
                prop_assert!((1..3).contains(&b));
            }
        }

        #[test]
        fn any_and_strings(b in any::<bool>(), c in any::<char>(), s in ".*") {
            let _ = b;
            let _ = c.is_alphabetic();
            prop_assert!(s.len() <= 4096);
        }

        #[test]
        fn prop_map_applies(n in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_honoured() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static HITS: AtomicU32 = AtomicU32::new(0);
        let cfg = ProptestConfig::with_cases(17);
        crate::test_runner::run_cases(&cfg, "counter", |_| {
            HITS.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(HITS.load(Ordering::SeqCst), 17);
    }
}
